package core

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/diag"
	"github.com/dessertlab/patchitpy/internal/editor"
	"github.com/dessertlab/patchitpy/internal/obs"
	"github.com/dessertlab/patchitpy/internal/resultcache"
	"github.com/dessertlab/patchitpy/internal/rulecheck"
)

// The session protocol mirrors the VS Code extension's interaction: the
// editor sends the selected code, PatchitPy answers with findings and fix
// previews, and — if the user clicks "Yes" in the popup — the editor sends
// a patch request and receives the TextEdits plus the patched buffer.

// Request is one line of the JSON session protocol.
type Request struct {
	// Cmd is "detect", "suggest", "patch", "open", "edit", "close",
	// "rules", "vet", "stats", "ping" or "metrics".
	Cmd string `json:"cmd"`
	// Code is the selected Python code (detect/suggest/patch) or the
	// initial buffer text (open).
	Code string `json:"code,omitempty"`
	// Tools, when non-empty on a "detect" request, selects analyzers from
	// the registry attached with SetAnalyzers (matched case-insensitively)
	// and answers with one per-tool result instead of the native report.
	Tools []string `json:"tools,omitempty"`
	// Taint, on a native "detect" request, enables the taint precision
	// filter: flow-gated findings with proven-constant sink arguments are
	// returned with their suppressed bit set and excluded from the
	// vulnerable verdict. Ignored by the other verbs; absent means the
	// response is byte-identical to pre-taint protocol versions.
	Taint bool `json:"taint,omitempty"`
	// Session names the buffer session an "edit" or "close" targets (the
	// id a prior "open" response returned).
	Session string `json:"session,omitempty"`
	// Edits are the buffer changes of an "edit" request, applied
	// sequentially: each range is resolved against the text produced by
	// the previous edit, matching the order an editor's change events
	// arrive in.
	Edits []editor.TextEdit `json:"edits,omitempty"`
}

// ToolResultDTO is one analyzer's verdict in a multi-tool detect
// response: the unified diagnostics model serialized as-is.
type ToolResultDTO struct {
	Tool       string         `json:"tool"`
	Vulnerable bool           `json:"vulnerable"`
	Findings   []diag.Finding `json:"findings,omitempty"`
}

// CacheStatsDTO is one result cache's counters serialized for the editor
// (the "stats" verb).
type CacheStatsDTO struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// StatsDTO is the "stats" verb payload: per-cache hit/miss/evict counters
// plus the detector's prefilter skip accounting.
type StatsDTO struct {
	Analyze         CacheStatsDTO `json:"analyze"`
	Fix             CacheStatsDTO `json:"fix"`
	Scan            CacheStatsDTO `json:"scan"`
	RulesConsidered uint64        `json:"rulesConsidered"`
	RulesSkipped    uint64        `json:"rulesSkipped"`
	PrefilterSkip   float64       `json:"prefilterSkipRate"`
}

// VetDTO is the "vet" verb payload: the catalog vetting report with its
// issues in the unified diagnostics shape.
type VetDTO struct {
	RuleCount   int            `json:"ruleCount"`
	Fingerprint string         `json:"fingerprint"`
	Errors      int            `json:"errors"`
	Warnings    int            `json:"warnings"`
	Infos       int            `json:"infos"`
	Findings    []diag.Finding `json:"findings,omitempty"`
}

// FixPreview shows one fix as a TextEdit against the submitted code, so
// the editor can render the popup's preview before the user accepts.
type FixPreview struct {
	RuleID      string          `json:"ruleId"`
	Note        string          `json:"note"`
	Edit        editor.TextEdit `json:"edit"`
	Replacement string          `json:"replacement"`
}

// IncStatsDTO describes the incremental work behind one "edit"
// response: how much of the buffer was treated as dirty and how the
// rule set split between re-running and replaying. Clients use it to
// report re-scan efficiency; the loadgen benchmark aggregates it into
// an incremental-hit-rate.
type IncStatsDTO struct {
	// Full is true when the edit fell back to a from-scratch scan.
	Full bool `json:"full"`
	// Spliced is true when the comment mask was updated in place
	// (tier-1 splice) rather than retokenized.
	Spliced bool `json:"spliced"`
	// DirtyBytes is the merged dirty-window size in the edited text.
	DirtyBytes int `json:"dirtyBytes"`
	// RulesRerun and RulesReplayed split the admitted rules between
	// regex re-execution and finding replay.
	RulesRerun    int `json:"rulesRerun"`
	RulesReplayed int `json:"rulesReplayed"`
}

// FindingDTO is a finding serialized for the editor.
type FindingDTO struct {
	RuleID   string `json:"ruleId"`
	CWE      string `json:"cwe"`
	Category string `json:"category"`
	Severity string `json:"severity"`
	Title    string `json:"title"`
	Line     int    `json:"line"`
	Snippet  string `json:"snippet"`
	FixNote  string `json:"fixNote,omitempty"`
	CanFix   bool   `json:"canFix"`
	// Suppressed and SuppressReason mark findings the taint precision
	// filter demoted (requests with "taint": true only).
	Suppressed     bool   `json:"suppressed,omitempty"`
	SuppressReason string `json:"suppressReason,omitempty"`
}

// Response is one line of the JSON session protocol.
type Response struct {
	OK         bool         `json:"ok"`
	Error      string       `json:"error,omitempty"`
	Vulnerable bool         `json:"vulnerable,omitempty"`
	Findings   []FindingDTO `json:"findings,omitempty"`
	// TaintSuppressed counts findings the taint precision filter demoted
	// ("detect" with "taint": true); suppressed findings stay in Findings
	// but do not count toward Vulnerable.
	TaintSuppressed int          `json:"taintSuppressed,omitempty"`
	Patched         string       `json:"patched,omitempty"`
	Imports         []string     `json:"importsAdded,omitempty"`
	Previews        []FixPreview `json:"previews,omitempty"`
	RuleCount       int          `json:"ruleCount,omitempty"`
	CWEs            []string     `json:"cwes,omitempty"`
	Stats           *StatsDTO    `json:"stats,omitempty"`
	// Vet carries the catalog vetting report ("vet" verb).
	Vet *VetDTO `json:"vet,omitempty"`
	// Session and Gen identify a buffer session and its document
	// generation ("open"/"edit" responses).
	Session string `json:"session,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	// Inc reports the incremental re-scan accounting of an "edit".
	Inc *IncStatsDTO `json:"inc,omitempty"`
	// Tools carries per-analyzer results for requests with a "tools" field.
	Tools []ToolResultDTO `json:"tools,omitempty"`
	// Version and UptimeMs answer the "ping" health check.
	Version  string `json:"version,omitempty"`
	UptimeMs int64  `json:"uptimeMs,omitempty"`
	// Metrics is the full observability snapshot ("metrics" verb; requires
	// SetObs).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Trace is the 128-bit trace ID of the span tree this request
	// recorded (hex, the W3C traceparent trace-id field), present only
	// when an enabled obs registry traced the request. Clients quote it
	// to correlate a response with /debug/traces, histogram exemplars
	// and log records.
	Trace string `json:"trace,omitempty"`
}

// MaxRequestBytes bounds one protocol request: the stdin loop's line
// buffer and the HTTP front end's body reader both enforce it, so a
// request that fits one transport fits the other.
const MaxRequestBytes = 4 * 1024 * 1024

// Serve reads newline-delimited JSON requests from r and writes one JSON
// response per line to w, until EOF. Malformed requests produce error
// responses; the session keeps running.
func (p *PatchitPy) Serve(r io.Reader, w io.Writer) error {
	return p.ServeContext(context.Background(), r, w)
}

// ServeContext is Serve with cancellation semantics matching the HTTP
// front end's graceful drain: when ctx is canceled (SIGINT/SIGTERM in
// `patchitpy serve`), the loop stops accepting new request lines, the
// request already being handled runs to completion and its response is
// written, and ServeContext returns nil. Lines are pulled by a reader
// goroutine so a cancellation is honored even while the session is idle,
// blocked on a read; the goroutine itself exits on the next line or EOF.
func (p *PatchitPy) ServeContext(ctx context.Context, r io.Reader, w io.Writer) error {
	type lineMsg struct {
		line []byte
		err  error
	}
	lines := make(chan lineMsg)
	go func() {
		defer close(lines)
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 0, 64*1024), MaxRequestBytes)
		for scanner.Scan() {
			line := append([]byte(nil), scanner.Bytes()...)
			select {
			case lines <- lineMsg{line: line}:
			case <-ctx.Done():
				return
			}
		}
		if err := scanner.Err(); err != nil {
			select {
			case lines <- lineMsg{err: err}:
			case <-ctx.Done():
			}
		}
	}()
	enc := json.NewEncoder(w)
	for {
		// Cancellation wins over buffered input: once ctx is done no
		// further line is accepted, even if one is already waiting.
		if ctx.Err() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case msg, ok := <-lines:
			if !ok {
				return nil
			}
			if msg.err != nil {
				return msg.err
			}
			if len(msg.line) == 0 {
				continue
			}
			var req Request
			if err := json.Unmarshal(msg.line, &req); err != nil {
				if p.logger != nil {
					p.logger.Warn("bad request", "transport", "stdio", "error", err.Error())
				}
				if err := enc.Encode(Response{OK: false, Error: "bad request: " + err.Error()}); err != nil {
					return fmt.Errorf("write response: %w", err)
				}
				continue
			}
			start := time.Now()
			resp := p.Handle(context.Background(), req)
			if p.logger != nil {
				// The stdio transport's per-request log record, matching
				// the HTTP front end's shape: verb, outcome, duration,
				// trace ID.
				attrs := []any{
					"transport", "stdio",
					"cmd", req.Cmd,
					"ok", resp.OK,
					"durationMs", float64(time.Since(start)) / float64(time.Millisecond),
				}
				if resp.Trace != "" {
					attrs = append(attrs, "trace", resp.Trace)
				}
				if resp.OK {
					p.logger.Info("request", attrs...)
				} else {
					p.logger.Warn("request", append(attrs, "error", resp.Error)...)
				}
			}
			if err := enc.Encode(resp); err != nil {
				return fmt.Errorf("write response: %w", err)
			}
		}
	}
}

// Handle dispatches one protocol request and returns its response — the
// single verb implementation shared by every front end (the stdin line
// loop above and internal/serve's HTTP endpoints), which is what makes
// the front ends response-identical by construction. The verb handler is
// wrapped with the per-command request counter, latency histogram and a
// "serve.<cmd>" trace span when an enabled obs registry is attached;
// detached or disabled registries cost one nil-safe atomic load. ctx
// carries the caller's deadline through the scan and patch phases.
func (p *PatchitPy) Handle(ctx context.Context, req Request) Response {
	if !p.obsReg.Enabled() {
		return p.handleCmd(ctx, req)
	}
	cmd := req.Cmd
	if cmd == "" {
		cmd = "unknown"
	}
	ctx, span := obs.Start(obs.With(ctx, p.obsReg), "serve."+cmd)
	if req.Session != "" {
		span.SetAttr("session", req.Session)
	}
	start := time.Now()
	resp := p.handleCmd(ctx, req)
	// The exemplar ties this observation's latency bucket to the trace
	// ID, so a histogram outlier links back to its /debug/traces entry.
	p.serveDur.With(cmd).ObserveExemplar(time.Since(start), span.TraceID())
	p.serveReqs.Add(cmd, 1)
	if span != nil {
		if resp.Session != "" && req.Session == "" {
			span.SetAttr("session", resp.Session)
		}
		if len(resp.Findings) > 0 {
			span.SetAttr("findings", len(resp.Findings))
		}
		if !resp.OK {
			span.SetError(resp.Error)
		}
		if tid := span.TraceID(); !tid.IsZero() {
			resp.Trace = tid.String()
		}
	}
	span.End()
	return resp
}

func (p *PatchitPy) handleCmd(ctx context.Context, req Request) Response {
	switch req.Cmd {
	case "detect":
		if len(req.Tools) > 0 {
			return p.detectTools(ctx, req)
		}
		var report Report
		if req.Taint {
			report = p.AnalyzeTaintContext(ctx, req.Code)
		} else {
			report = p.AnalyzeContext(ctx, req.Code)
		}
		return Response{
			OK:              true,
			Vulnerable:      report.Vulnerable,
			Findings:        toDTOs(report.Findings),
			TaintSuppressed: report.Suppressed,
			CWEs:            report.CWEs,
		}
	case "suggest":
		outcome := p.FixContext(ctx, req.Code)
		previews := make([]FixPreview, 0, len(outcome.Result.Applied))
		for i, a := range outcome.Result.Applied {
			previews = append(previews, FixPreview{
				RuleID:      a.Finding.Rule.ID,
				Note:        a.Note,
				Edit:        outcome.Edits[i],
				Replacement: a.Replacement,
			})
		}
		return Response{
			OK:         true,
			Vulnerable: outcome.Report.Vulnerable,
			Findings:   toDTOs(outcome.Report.Findings),
			Previews:   previews,
			Imports:    outcome.Result.ImportsAdded,
			CWEs:       outcome.Report.CWEs,
		}
	case "patch":
		outcome := p.FixContext(ctx, req.Code)
		return Response{
			OK:         true,
			Vulnerable: outcome.Report.Vulnerable,
			Findings:   toDTOs(outcome.Report.Findings),
			Patched:    outcome.Result.Source,
			Imports:    outcome.Result.ImportsAdded,
			CWEs:       outcome.Report.CWEs,
		}
	case "open":
		res := p.sessions.Open(ctx, req.Code)
		return Response{
			OK:         true,
			Session:    res.ID,
			Gen:        res.Gen,
			Vulnerable: len(res.Findings) > 0,
			Findings:   toDTOs(res.Findings),
			CWEs:       detect.DistinctCWEs(res.Findings),
		}
	case "edit":
		res, err := p.sessions.Edit(ctx, req.Session, req.Edits)
		if err != nil {
			return Response{OK: false, Error: err.Error()}
		}
		return Response{
			OK:         true,
			Session:    res.ID,
			Gen:        res.Gen,
			Vulnerable: len(res.Findings) > 0,
			Findings:   toDTOs(res.Findings),
			CWEs:       detect.DistinctCWEs(res.Findings),
			Inc: &IncStatsDTO{
				Full:          res.Stats.Full,
				Spliced:       res.Stats.MaskSpliced,
				DirtyBytes:    res.Stats.DirtyBytes,
				RulesRerun:    res.Stats.RulesRerun,
				RulesReplayed: res.Stats.RulesReplayed,
			},
		}
	case "close":
		if err := p.sessions.Close(req.Session); err != nil {
			return Response{OK: false, Error: err.Error()}
		}
		return Response{OK: true, Session: req.Session}
	case "rules":
		return Response{OK: true, RuleCount: p.Catalog().Len(), CWEs: p.Catalog().CWEs()}
	case "vet":
		rep := rulecheck.Check(p.Catalog())
		return Response{OK: true, Vulnerable: rep.HasErrors(), Vet: &VetDTO{
			RuleCount:   rep.RuleCount,
			Fingerprint: rep.Fingerprint,
			Errors:      rep.Errors(),
			Warnings:    rep.Warnings(),
			Infos:       rep.Infos(),
			Findings:    rep.Findings(),
		}}
	case "stats":
		cs := p.CacheStats()
		toDTO := func(s resultcache.Stats) CacheStatsDTO {
			return CacheStatsDTO{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, HitRate: s.HitRate()}
		}
		return Response{OK: true, Stats: &StatsDTO{
			Analyze:         toDTO(cs.Analyze),
			Fix:             toDTO(cs.Fix),
			Scan:            toDTO(cs.Scan),
			RulesConsidered: cs.Prefilter.RulesConsidered,
			RulesSkipped:    cs.Prefilter.RulesSkipped,
			PrefilterSkip:   cs.Prefilter.SkipRate(),
		}}
	case "ping":
		return Response{
			OK:        true,
			Version:   Version,
			UptimeMs:  time.Since(processStart).Milliseconds(),
			RuleCount: p.Catalog().Len(),
		}
	case "metrics":
		if p.obsReg == nil {
			return Response{OK: false, Error: "metrics not available: no observability registry attached (see SetObs)"}
		}
		return Response{OK: true, Metrics: p.obsReg.Snapshot()}
	default:
		return Response{OK: false, Error: "unknown command " + req.Cmd}
	}
}

// detectTools answers a "detect" request that names analyzers: each named
// tool runs over the code and reports through the unified model. The
// aggregate Vulnerable bit is the OR across the selected tools.
func (p *PatchitPy) detectTools(ctx context.Context, req Request) Response {
	reg := p.analyzers
	if reg == nil {
		return Response{OK: false, Error: "tools not available: no analyzer registry attached"}
	}
	resp := Response{OK: true}
	for _, name := range req.Tools {
		a, ok := reg.Find(name)
		if !ok {
			return Response{OK: false, Error: fmt.Sprintf("unknown tool %q (available: %s)",
				name, strings.Join(reg.Names(), ", "))}
		}
		res, err := a.Analyze(ctx, req.Code)
		if err != nil {
			return Response{OK: false, Error: err.Error()}
		}
		resp.Tools = append(resp.Tools, ToolResultDTO{
			Tool:       a.Name(),
			Vulnerable: res.Vulnerable,
			Findings:   res.Findings,
		})
		resp.Vulnerable = resp.Vulnerable || res.Vulnerable
	}
	return resp
}

func toDTOs(findings []detect.Finding) []FindingDTO {
	out := make([]FindingDTO, 0, len(findings))
	for _, f := range findings {
		dto := FindingDTO{
			RuleID:   f.Rule.ID,
			CWE:      f.Rule.CWE,
			Category: f.Rule.Category.String(),
			Severity: f.Rule.Severity.String(),
			Title:    f.Rule.Title,
			Line:     f.Line,
			Snippet:  f.Snippet,
			CanFix:   f.Rule.HasFix(),
		}
		if f.Rule.Fix != nil {
			dto.FixNote = f.Rule.Fix.Note
		}
		dto.Suppressed = f.Suppressed
		dto.SuppressReason = f.SuppressReason
		out = append(out, dto)
	}
	return out
}

package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/dessertlab/patchitpy/internal/editor"
)

const vulnerableApp = `from flask import Flask, request
app = Flask(__name__)

@app.route("/comments")
def comments():
    comment = request.args.get("q", "")
    return f"<p>{comment}</p>"

if __name__ == "__main__":
    app.run(debug=True)
`

func TestAnalyzeVulnerable(t *testing.T) {
	p := New()
	report := p.Analyze(vulnerableApp)
	if !report.Vulnerable {
		t.Fatal("not flagged vulnerable")
	}
	joined := strings.Join(report.CWEs, ",")
	if !strings.Contains(joined, "CWE-079") || !strings.Contains(joined, "CWE-209") {
		t.Errorf("CWEs = %v", report.CWEs)
	}
}

func TestFixEndToEnd(t *testing.T) {
	p := New()
	outcome := p.Fix(vulnerableApp)
	src := outcome.Result.Source
	for _, want := range []string{"escape(comment)", "debug=False, use_reloader=False", "from markupsafe import escape"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
	// rescanning the patched source must be clean
	if rescan := p.Analyze(src); rescan.Vulnerable {
		t.Errorf("patched source still vulnerable: %v", rescan.CWEs)
	}
}

func TestFixEditsMatchPatches(t *testing.T) {
	p := New()
	outcome := p.Fix(vulnerableApp)
	if len(outcome.Edits) != len(outcome.Result.Applied) {
		t.Fatalf("edits = %d, applied = %d", len(outcome.Edits), len(outcome.Result.Applied))
	}
	// Applying the TextEdits to the original source must reproduce the
	// patched body (modulo the import insertion, which is separate).
	edited, err := editor.ApplyEdits(vulnerableApp, outcome.Edits)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(edited, "escape(comment)") {
		t.Errorf("edit application diverged:\n%s", edited)
	}
}

func TestAnalyzeClean(t *testing.T) {
	p := New()
	report := p.Analyze("def add(a, b):\n    return a + b\n")
	if report.Vulnerable || len(report.Findings) != 0 {
		t.Errorf("clean code flagged: %+v", report)
	}
}

func TestCatalogExposed(t *testing.T) {
	p := New()
	if p.Catalog().Len() != 85 {
		t.Errorf("catalog size = %d", p.Catalog().Len())
	}
}

func TestServeProtocol(t *testing.T) {
	p := New()
	var in bytes.Buffer
	reqs := []Request{
		{Cmd: "rules"},
		{Cmd: "detect", Code: vulnerableApp},
		{Cmd: "patch", Code: vulnerableApp},
		{Cmd: "nope"},
	}
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		in.Write(b)
		in.WriteByte('\n')
	}
	var out bytes.Buffer
	if err := p.Serve(&in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("responses = %d, want 4", len(lines))
	}
	var resp Response

	if err := json.Unmarshal([]byte(lines[0]), &resp); err != nil || !resp.OK || resp.RuleCount != 85 {
		t.Errorf("rules response: %+v (%v)", resp, err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &resp); err != nil || !resp.OK || !resp.Vulnerable || len(resp.Findings) == 0 {
		t.Errorf("detect response: %+v (%v)", resp, err)
	}
	for _, f := range resp.Findings {
		if f.RuleID == "" || f.CWE == "" || f.Severity == "" {
			t.Errorf("incomplete finding DTO: %+v", f)
		}
	}
	if err := json.Unmarshal([]byte(lines[2]), &resp); err != nil || !resp.OK || !strings.Contains(resp.Patched, "escape(") {
		t.Errorf("patch response: %+v (%v)", resp, err)
	}
	if err := json.Unmarshal([]byte(lines[3]), &resp); err != nil || resp.OK {
		t.Errorf("unknown-cmd response: %+v (%v)", resp, err)
	}
}

func TestServeMalformedLine(t *testing.T) {
	p := New()
	in := strings.NewReader("{not json}\n{\"cmd\":\"rules\"}\n")
	var out bytes.Buffer
	if err := p.Serve(in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("responses = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "bad request") {
		t.Errorf("first response: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"ok":true`) {
		t.Errorf("session did not survive the bad line: %s", lines[1])
	}
}

func BenchmarkFixPipeline(b *testing.B) {
	p := New()
	b.SetBytes(int64(len(vulnerableApp)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Fix(vulnerableApp)
	}
}

func TestServeSuggestPreviews(t *testing.T) {
	p := New()
	in := strings.NewReader(`{"cmd":"suggest","code":"import hashlib\nh = hashlib.md5(x)\n"}` + "\n")
	var out bytes.Buffer
	if err := p.Serve(in, &out); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Vulnerable || len(resp.Previews) != 1 {
		t.Fatalf("suggest response: %+v", resp)
	}
	pv := resp.Previews[0]
	if pv.RuleID != "PIP-CRY-001" || pv.Replacement != "hashlib.sha256(" || pv.Note == "" {
		t.Errorf("preview: %+v", pv)
	}
	if resp.Patched != "" {
		t.Error("suggest must not return patched code")
	}
	// applying the preview edit manually must reproduce the fix
	edited, err := editor.ApplyEdits("import hashlib\nh = hashlib.md5(x)\n", []editor.TextEdit{pv.Edit})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(edited, "hashlib.sha256(x)") {
		t.Errorf("edit application: %q", edited)
	}
}

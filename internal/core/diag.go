package core

import (
	"context"

	"github.com/dessertlab/patchitpy/internal/baseline/banditlite"
	"github.com/dessertlab/patchitpy/internal/baseline/querydb"
	"github.com/dessertlab/patchitpy/internal/baseline/semgreplite"
	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/diag"
)

// engineAnalyzer adapts the two-phase engine (detect + patch) to the
// unified diagnostics model. Unlike the detector-level adapter, its
// Result carries the patched source, so it implements diag.Patcher and
// drives the Table III rows.
type engineAnalyzer struct {
	p *PatchitPy
}

// Analyzer returns the engine as a diag.Analyzer named "PatchitPy".
// Analyze runs both phases through the engine's result caches, so
// repeated sources cost a hash lookup exactly like direct Fix calls.
func (p *PatchitPy) Analyzer() diag.Analyzer { return engineAnalyzer{p: p} }

// Name implements diag.Analyzer.
func (engineAnalyzer) Name() string { return detect.ToolName }

// CanPatch implements diag.Patcher.
func (engineAnalyzer) CanPatch() bool { return true }

// Analyze implements diag.Analyzer.
func (a engineAnalyzer) Analyze(ctx context.Context, src string) (diag.Result, error) {
	if err := ctx.Err(); err != nil {
		return diag.Result{}, err
	}
	outcome := a.p.Fix(src)
	return diag.Result{
		Tool:       detect.ToolName,
		Findings:   detect.DiagFindings(outcome.Report.Findings),
		Vulnerable: outcome.Report.Vulnerable,
		Patched:    outcome.Result.Source,
	}, nil
}

// DefaultAnalyzers returns a registry holding the engine plus the three
// static-analysis baselines, in the paper's Table II row order:
// PatchitPy, CodeQL, Semgrep, Bandit. The LLM assistants are excluded —
// they need generated-sample context that interactive callers don't have.
func DefaultAnalyzers(p *PatchitPy) *diag.Registry {
	reg := diag.NewRegistry()
	reg.MustRegister(p.Analyzer())
	reg.MustRegister(querydb.New().Analyzer())
	reg.MustRegister(semgreplite.New().Analyzer())
	reg.MustRegister(banditlite.New().Analyzer())
	return reg
}

// SetAnalyzers attaches a registry of analyzers the serve protocol's
// "tools" request field can query. The registry should include this
// engine's own Analyzer under "PatchitPy"; DefaultAnalyzers builds that
// shape. A nil registry disables per-tool queries.
func (p *PatchitPy) SetAnalyzers(reg *diag.Registry) { p.analyzers = reg }

// Analyzers returns the registry attached with SetAnalyzers (nil when
// none is attached).
func (p *PatchitPy) Analyzers() *diag.Registry { return p.analyzers }

package core

import (
	"context"
	"testing"

	"github.com/dessertlab/patchitpy/internal/diag"
)

// The engine adapter runs both phases: findings from detection, the
// rewritten source from patching, and patch capability advertised.
func TestEngineAnalyzer(t *testing.T) {
	p := New()
	a := p.Analyzer()
	if a.Name() != "PatchitPy" {
		t.Errorf("Name = %q", a.Name())
	}
	if !diag.CanPatch(a) {
		t.Error("engine must report patch capability")
	}
	src := "import yaml\ncfg = yaml.load(stream)\n"
	want := p.Fix(src)
	res, err := a.Analyze(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable != want.Report.Vulnerable {
		t.Errorf("Vulnerable = %v, want %v", res.Vulnerable, want.Report.Vulnerable)
	}
	if res.Patched != want.Result.Source {
		t.Errorf("Patched diverged from Fix:\n%q\nvs\n%q", res.Patched, want.Result.Source)
	}
	if len(res.Findings) != len(want.Report.Findings) {
		t.Errorf("findings = %d, want %d", len(res.Findings), len(want.Report.Findings))
	}
	for _, f := range res.Findings {
		if f.RuleID == "" || f.CWE == "" || f.Line == 0 {
			t.Errorf("lossy finding %+v", f)
		}
	}
}

func TestDefaultAnalyzers(t *testing.T) {
	p := New()
	reg := DefaultAnalyzers(p)
	want := []string{"PatchitPy", "CodeQL", "Semgrep", "Bandit"}
	names := reg.Names()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if got := reg.Patchers(); len(got) != 1 || got[0] != "PatchitPy" {
		t.Errorf("patchers = %v, want [PatchitPy]", got)
	}
}

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

const toolsCode = "import yaml\ncfg = yaml.load(stream)\n"

// A "detect" request naming tools answers with one result per analyzer
// from the attached registry, matched case-insensitively.
func TestServeToolsField(t *testing.T) {
	p := New()
	p.SetAnalyzers(DefaultAnalyzers(p))
	in := strings.NewReader(
		`{"cmd":"detect","code":"import yaml\ncfg = yaml.load(stream)\n","tools":["bandit","PatchitPy"]}` + "\n" +
			`{"cmd":"detect","code":"x = 1\n","tools":["nope"]}` + "\n")
	var out bytes.Buffer
	if err := p.Serve(in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("responses = %d, want 2", len(lines))
	}

	var resp Response
	if err := json.Unmarshal([]byte(lines[0]), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Vulnerable || len(resp.Tools) != 2 {
		t.Fatalf("tools response: %+v", resp)
	}
	if resp.Tools[0].Tool != "Bandit" || resp.Tools[1].Tool != "PatchitPy" {
		t.Errorf("tool order should follow the request: %+v", resp.Tools)
	}
	for _, tr := range resp.Tools {
		if !tr.Vulnerable || len(tr.Findings) == 0 {
			t.Errorf("%s: expected findings on yaml.load, got %+v", tr.Tool, tr)
		}
		for _, f := range tr.Findings {
			if f.Tool != tr.Tool || f.RuleID == "" || f.Line == 0 {
				t.Errorf("incomplete finding: %+v", f)
			}
		}
	}

	if err := json.Unmarshal([]byte(lines[1]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown tool") {
		t.Errorf("unknown tool response: %+v", resp)
	}
}

// Without an attached registry, a tools request fails cleanly and the
// session keeps serving.
func TestServeToolsWithoutRegistry(t *testing.T) {
	p := New()
	resp := p.Handle(context.Background(), Request{Cmd: "detect", Code: toolsCode, Tools: []string{"Bandit"}})
	if resp.OK || !strings.Contains(resp.Error, "no analyzer registry") {
		t.Errorf("response = %+v", resp)
	}
	// A plain detect still works.
	if resp := p.Handle(context.Background(), Request{Cmd: "detect", Code: toolsCode}); !resp.OK || !resp.Vulnerable {
		t.Errorf("plain detect after tools error: %+v", resp)
	}
}

// Package metrics implements the classification and repair metrics of the
// paper's evaluation (Table II and Table III): confusion matrices with
// precision/recall/F1/accuracy, and repair rates relative to detected and
// total vulnerabilities.
package metrics

import "fmt"

// Confusion is a binary-classification confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one judgement: predicted vs actual vulnerability.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Merge adds another confusion matrix into this one.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of judgements recorded.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is TP / (TP + FP); zero when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); zero when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d (P=%.2f R=%.2f F1=%.2f A=%.2f)",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1(), c.Accuracy())
}

// Repair tallies patching outcomes for one tool on one sample set
// (paper Table III).
type Repair struct {
	// Detected is the number of truly vulnerable samples the tool flagged.
	Detected int
	// TotalVulnerable is the number of truly vulnerable samples in the set.
	TotalVulnerable int
	// Patched is the number of vulnerable samples the tool repaired
	// correctly (verified by the oracle).
	Patched int
}

// RateDetected is Patched / Detected — the paper's "Patched [Det.]".
func (r Repair) RateDetected() float64 {
	if r.Detected == 0 {
		return 0
	}
	return float64(r.Patched) / float64(r.Detected)
}

// RateTotal is Patched / TotalVulnerable — the paper's "Patched [Tot.]".
func (r Repair) RateTotal() float64 {
	if r.TotalVulnerable == 0 {
		return 0
	}
	return float64(r.Patched) / float64(r.TotalVulnerable)
}

// Merge adds another repair tally into this one.
func (r *Repair) Merge(o Repair) {
	r.Detected += o.Detected
	r.TotalVulnerable += o.TotalVulnerable
	r.Patched += o.Patched
}

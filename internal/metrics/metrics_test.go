package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("c = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 || c.Accuracy() != 0.5 {
		t.Errorf("metrics: %s", c)
	}
}

func TestConfusionPaperShape(t *testing.T) {
	// A PatchitPy-like matrix: P=.97, R=.88 -> F1≈.93.
	c := Confusion{TP: 410, FP: 12, FN: 55, TN: 132}
	if p := c.Precision(); math.Abs(p-0.9716) > 0.001 {
		t.Errorf("P = %v", p)
	}
	if r := c.Recall(); math.Abs(r-0.8817) > 0.001 {
		t.Errorf("R = %v", r)
	}
	if f := c.F1(); math.Abs(f-0.9245) > 0.001 {
		t.Errorf("F1 = %v", f)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty matrix must give zeros, not NaN")
	}
	perfect := Confusion{TP: 10, TN: 10}
	if perfect.F1() != 1 || perfect.Accuracy() != 1 {
		t.Errorf("perfect: %s", perfect)
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Errorf("merged = %+v", a)
	}
}

func TestConfusionString(t *testing.T) {
	s := Confusion{TP: 1}.String()
	if !strings.Contains(s, "TP=1") {
		t.Error(s)
	}
}

// Property: all four rates stay in [0,1] for any non-negative counts.
func TestRatesBounded(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		for _, v := range []float64{c.Precision(), c.Recall(), c.F1(), c.Accuracy()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: F1 lies between min and max of precision and recall.
func TestF1Between(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp) + 1, FP: int(fp), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRepairRates(t *testing.T) {
	r := Repair{Detected: 150, TotalVulnerable: 169, Patched: 102}
	if got := r.RateDetected(); math.Abs(got-0.68) > 0.0001 {
		t.Errorf("RateDetected = %v", got)
	}
	if got := r.RateTotal(); math.Abs(got-102.0/169.0) > 1e-9 {
		t.Errorf("RateTotal = %v", got)
	}
}

func TestRepairZeroDenominators(t *testing.T) {
	var r Repair
	if r.RateDetected() != 0 || r.RateTotal() != 0 {
		t.Error("zero denominators must give 0")
	}
}

func TestRepairMerge(t *testing.T) {
	a := Repair{Detected: 1, TotalVulnerable: 2, Patched: 1}
	a.Merge(Repair{Detected: 10, TotalVulnerable: 20, Patched: 5})
	if a.Detected != 11 || a.TotalVulnerable != 22 || a.Patched != 6 {
		t.Errorf("merged = %+v", a)
	}
}

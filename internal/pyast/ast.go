// Package pyast provides a lightweight abstract syntax tree and a tolerant
// recursive-descent parser for Python 3 source code.
//
// The parser covers the Python subset that appears in AI-generated security
// snippets: modules, imports, function and class definitions with
// decorators, the full statement suite (if/elif/else, for/while with else,
// try/except/finally, with, return/raise/assert/del/global/nonlocal/pass/
// break/continue), assignments (plain, augmented, annotated, chained) and a
// complete expression grammar (boolean ops, comparisons incl. chained,
// arithmetic, unary, lambda, ternary, calls with *args/**kwargs and keyword
// arguments, attribute access, subscripts and slices, tuples, lists, dicts,
// sets, comprehensions, f-strings as atoms).
//
// It is deliberately tolerant: AI code generators frequently emit truncated
// or slightly malformed snippets, and the paper's tool is explicitly
// designed to work on such fragments. Statement-level parse errors are
// recorded on the Module and the parser resynchronizes at the next logical
// line instead of aborting.
package pyast

import "github.com/dessertlab/patchitpy/internal/pytoken"

// Node is implemented by every AST node.
type Node interface {
	// Pos returns the position of the first token of the node.
	Pos() pytoken.Position
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Module is the root of a parsed file.
type Module struct {
	Body   []Stmt
	Errors []*ParseError // recovered statement-level errors
}

// Pos returns the position of the first statement, or the zero position.
func (m *Module) Pos() pytoken.Position {
	if len(m.Body) > 0 {
		return m.Body[0].Pos()
	}
	return pytoken.Position{Line: 1}
}

// ParseError records a recovered syntax problem.
type ParseError struct {
	Msg      string
	Position pytoken.Position
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return e.Position.String() + ": " + e.Msg
}

// ---- statements ----

type (
	// Import is "import a.b as c, d".
	Import struct {
		Names    []Alias
		Position pytoken.Position
	}

	// ImportFrom is "from mod import a as b, c" or "from mod import *".
	ImportFrom struct {
		Module   string // dotted module path; may be empty for relative
		Names    []Alias
		Star     bool
		Level    int // number of leading dots
		Position pytoken.Position
	}

	// Alias is a name with an optional "as" binding.
	Alias struct {
		Name   string
		AsName string
	}

	// FunctionDef is "def name(params): body" with decorators; Async marks
	// "async def".
	FunctionDef struct {
		Name       string
		Params     []Param
		Body       []Stmt
		Decorators []Expr
		Returns    Expr // annotation after ->, may be nil
		Async      bool
		Position   pytoken.Position
	}

	// Param is a single formal parameter.
	Param struct {
		Name       string
		Default    Expr // may be nil
		Annotation Expr // may be nil
		Star       bool // *args
		DoubleStar bool // **kwargs
	}

	// ClassDef is "class Name(bases): body" with decorators.
	ClassDef struct {
		Name       string
		Bases      []Expr
		Keywords   []Keyword
		Body       []Stmt
		Decorators []Expr
		Position   pytoken.Position
	}

	// If is an if/elif/else chain; elif is nested inside Orelse.
	If struct {
		Cond     Expr
		Body     []Stmt
		Orelse   []Stmt
		Position pytoken.Position
	}

	// For is "for target in iter: body else: orelse"; Async marks
	// "async for".
	For struct {
		Target   Expr
		Iter     Expr
		Body     []Stmt
		Orelse   []Stmt
		Async    bool
		Position pytoken.Position
	}

	// While is "while cond: body else: orelse".
	While struct {
		Cond     Expr
		Body     []Stmt
		Orelse   []Stmt
		Position pytoken.Position
	}

	// Try is try/except*/else/finally.
	Try struct {
		Body     []Stmt
		Handlers []ExceptHandler
		Orelse   []Stmt
		Finally  []Stmt
		Position pytoken.Position
	}

	// ExceptHandler is one "except [type [as name]]:" clause.
	ExceptHandler struct {
		Type     Expr // may be nil for bare except
		Name     string
		Body     []Stmt
		Position pytoken.Position
	}

	// With is "with items: body"; Async marks "async with".
	With struct {
		Items    []WithItem
		Body     []Stmt
		Async    bool
		Position pytoken.Position
	}

	// WithItem is one "expr [as target]" in a with statement.
	WithItem struct {
		Context Expr
		Target  Expr // may be nil
	}

	// Return is "return [value]".
	Return struct {
		Value    Expr // may be nil
		Position pytoken.Position
	}

	// Raise is "raise [exc [from cause]]".
	Raise struct {
		Exc      Expr // may be nil
		Cause    Expr // may be nil
		Position pytoken.Position
	}

	// Assert is "assert test [, msg]".
	Assert struct {
		Test     Expr
		Msg      Expr // may be nil
		Position pytoken.Position
	}

	// Assign is "t1 = t2 = value" (one or more targets).
	Assign struct {
		Targets  []Expr
		Value    Expr
		Position pytoken.Position
	}

	// AugAssign is "target op= value".
	AugAssign struct {
		Target   Expr
		Op       string // "+=", "-=", ...
		Value    Expr
		Position pytoken.Position
	}

	// AnnAssign is "target: annotation [= value]".
	AnnAssign struct {
		Target     Expr
		Annotation Expr
		Value      Expr // may be nil
		Position   pytoken.Position
	}

	// ExprStmt is a bare expression used as a statement.
	ExprStmt struct {
		Value    Expr
		Position pytoken.Position
	}

	// Pass, Break and Continue are their keywords.
	Pass struct{ Position pytoken.Position }
	// Break is the break statement.
	Break struct{ Position pytoken.Position }
	// Continue is the continue statement.
	Continue struct{ Position pytoken.Position }

	// Global is "global a, b".
	Global struct {
		Names    []string
		Position pytoken.Position
	}

	// Nonlocal is "nonlocal a, b".
	Nonlocal struct {
		Names    []string
		Position pytoken.Position
	}

	// Del is "del a, b".
	Del struct {
		Targets  []Expr
		Position pytoken.Position
	}

	// BadStmt marks a statement that failed to parse; the parser recovered
	// at the next logical line.
	BadStmt struct {
		Source   string // raw token texts joined with spaces
		Position pytoken.Position
	}
)

func (s *Import) Pos() pytoken.Position      { return s.Position }
func (s *ImportFrom) Pos() pytoken.Position  { return s.Position }
func (s *FunctionDef) Pos() pytoken.Position { return s.Position }
func (s *ClassDef) Pos() pytoken.Position    { return s.Position }
func (s *If) Pos() pytoken.Position          { return s.Position }
func (s *For) Pos() pytoken.Position         { return s.Position }
func (s *While) Pos() pytoken.Position       { return s.Position }
func (s *Try) Pos() pytoken.Position         { return s.Position }
func (s *With) Pos() pytoken.Position        { return s.Position }
func (s *Return) Pos() pytoken.Position      { return s.Position }
func (s *Raise) Pos() pytoken.Position       { return s.Position }
func (s *Assert) Pos() pytoken.Position      { return s.Position }
func (s *Assign) Pos() pytoken.Position      { return s.Position }
func (s *AugAssign) Pos() pytoken.Position   { return s.Position }
func (s *AnnAssign) Pos() pytoken.Position   { return s.Position }
func (s *ExprStmt) Pos() pytoken.Position    { return s.Position }
func (s *Pass) Pos() pytoken.Position        { return s.Position }
func (s *Break) Pos() pytoken.Position       { return s.Position }
func (s *Continue) Pos() pytoken.Position    { return s.Position }
func (s *Global) Pos() pytoken.Position      { return s.Position }
func (s *Nonlocal) Pos() pytoken.Position    { return s.Position }
func (s *Del) Pos() pytoken.Position         { return s.Position }
func (s *BadStmt) Pos() pytoken.Position     { return s.Position }

func (*Import) stmtNode()      {}
func (*ImportFrom) stmtNode()  {}
func (*FunctionDef) stmtNode() {}
func (*ClassDef) stmtNode()    {}
func (*If) stmtNode()          {}
func (*For) stmtNode()         {}
func (*While) stmtNode()       {}
func (*Try) stmtNode()         {}
func (*With) stmtNode()        {}
func (*Return) stmtNode()      {}
func (*Raise) stmtNode()       {}
func (*Assert) stmtNode()      {}
func (*Assign) stmtNode()      {}
func (*AugAssign) stmtNode()   {}
func (*AnnAssign) stmtNode()   {}
func (*ExprStmt) stmtNode()    {}
func (*Pass) stmtNode()        {}
func (*Break) stmtNode()       {}
func (*Continue) stmtNode()    {}
func (*Global) stmtNode()      {}
func (*Nonlocal) stmtNode()    {}
func (*Del) stmtNode()         {}
func (*BadStmt) stmtNode()     {}

// ---- expressions ----

type (
	// Name is an identifier reference.
	Name struct {
		ID       string
		Position pytoken.Position
	}

	// NumberLit is a numeric literal with its source text.
	NumberLit struct {
		Text     string
		Position pytoken.Position
	}

	// StringLit is a (possibly implicitly concatenated) string literal.
	// Raw holds the exact source text including prefix and quotes;
	// Value holds the unquoted content of the first segment (best effort);
	// FString is true when any segment carries an f prefix.
	StringLit struct {
		Raw      string
		Value    string
		FString  bool
		Position pytoken.Position
	}

	// ConstLit is True, False or None.
	ConstLit struct {
		Kind     string // "True", "False", "None"
		Position pytoken.Position
	}

	// Tuple, List, Set and Dict are container displays.
	Tuple struct {
		Elts     []Expr
		Position pytoken.Position
	}
	// List is a list display.
	List struct {
		Elts     []Expr
		Position pytoken.Position
	}
	// Set is a set display.
	Set struct {
		Elts     []Expr
		Position pytoken.Position
	}
	// Dict is a dict display; a nil key marks a **mapping expansion.
	Dict struct {
		Keys     []Expr
		Values   []Expr
		Position pytoken.Position
	}

	// Keyword is "name=value" or "**value" (empty Name) inside a call.
	Keyword struct {
		Name  string
		Value Expr
	}

	// Call is a function call.
	Call struct {
		Func     Expr
		Args     []Expr
		Keywords []Keyword
		Position pytoken.Position
	}

	// Attribute is "value.attr".
	Attribute struct {
		Value    Expr
		Attr     string
		Position pytoken.Position
	}

	// Subscript is "value[index]".
	Subscript struct {
		Value    Expr
		Index    Expr
		Position pytoken.Position
	}

	// Slice is "[lower:upper:step]" inside a subscript.
	Slice struct {
		Lower    Expr // any of these may be nil
		Upper    Expr
		Step     Expr
		Position pytoken.Position
	}

	// BinOp is "left op right" for arithmetic/bitwise operators.
	BinOp struct {
		Left     Expr
		Op       string
		Right    Expr
		Position pytoken.Position
	}

	// BoolOp is "a and b and c" / "a or b"; Values has 2+ operands.
	BoolOp struct {
		Op       string // "and" | "or"
		Values   []Expr
		Position pytoken.Position
	}

	// UnaryOp is "-x", "+x", "~x" or "not x".
	UnaryOp struct {
		Op       string
		Operand  Expr
		Position pytoken.Position
	}

	// Compare is a (possibly chained) comparison: a < b <= c.
	Compare struct {
		Left        Expr
		Ops         []string
		Comparators []Expr
		Position    pytoken.Position
	}

	// IfExp is the ternary "body if cond else orelse".
	IfExp struct {
		Cond     Expr
		Body     Expr
		Orelse   Expr
		Position pytoken.Position
	}

	// Lambda is "lambda params: body".
	Lambda struct {
		Params   []Param
		Body     Expr
		Position pytoken.Position
	}

	// Starred is "*expr" in call arguments or assignment targets.
	Starred struct {
		Value    Expr
		Position pytoken.Position
	}

	// Await is "await expr".
	Await struct {
		Value    Expr
		Position pytoken.Position
	}

	// Yield is "yield [value]" or "yield from value".
	Yield struct {
		Value    Expr // may be nil
		From     bool
		Position pytoken.Position
	}

	// Comp is a comprehension (list/set/dict/generator).
	Comp struct {
		Kind       string // "list", "set", "dict", "generator"
		Elt        Expr   // element (key for dict)
		Value      Expr   // value for dict comprehensions, else nil
		Generators []CompFor
		Position   pytoken.Position
	}

	// CompFor is one "for target in iter [if cond]*" clause.
	CompFor struct {
		Target Expr
		Iter   Expr
		Ifs    []Expr
	}

	// BadExpr marks an expression that failed to parse.
	BadExpr struct {
		Position pytoken.Position
	}
)

func (e *Name) Pos() pytoken.Position      { return e.Position }
func (e *NumberLit) Pos() pytoken.Position { return e.Position }
func (e *StringLit) Pos() pytoken.Position { return e.Position }
func (e *ConstLit) Pos() pytoken.Position  { return e.Position }
func (e *Tuple) Pos() pytoken.Position     { return e.Position }
func (e *List) Pos() pytoken.Position      { return e.Position }
func (e *Set) Pos() pytoken.Position       { return e.Position }
func (e *Dict) Pos() pytoken.Position      { return e.Position }
func (e *Call) Pos() pytoken.Position      { return e.Position }
func (e *Attribute) Pos() pytoken.Position { return e.Position }
func (e *Subscript) Pos() pytoken.Position { return e.Position }
func (e *Slice) Pos() pytoken.Position     { return e.Position }
func (e *BinOp) Pos() pytoken.Position     { return e.Position }
func (e *BoolOp) Pos() pytoken.Position    { return e.Position }
func (e *UnaryOp) Pos() pytoken.Position   { return e.Position }
func (e *Compare) Pos() pytoken.Position   { return e.Position }
func (e *IfExp) Pos() pytoken.Position     { return e.Position }
func (e *Lambda) Pos() pytoken.Position    { return e.Position }
func (e *Starred) Pos() pytoken.Position   { return e.Position }
func (e *Await) Pos() pytoken.Position     { return e.Position }
func (e *Yield) Pos() pytoken.Position     { return e.Position }
func (e *Comp) Pos() pytoken.Position      { return e.Position }
func (e *BadExpr) Pos() pytoken.Position   { return e.Position }

func (*Name) exprNode()      {}
func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*ConstLit) exprNode()  {}
func (*Tuple) exprNode()     {}
func (*List) exprNode()      {}
func (*Set) exprNode()       {}
func (*Dict) exprNode()      {}
func (*Call) exprNode()      {}
func (*Attribute) exprNode() {}
func (*Subscript) exprNode() {}
func (*Slice) exprNode()     {}
func (*BinOp) exprNode()     {}
func (*BoolOp) exprNode()    {}
func (*UnaryOp) exprNode()   {}
func (*Compare) exprNode()   {}
func (*IfExp) exprNode()     {}
func (*Lambda) exprNode()    {}
func (*Starred) exprNode()   {}
func (*Await) exprNode()     {}
func (*Yield) exprNode()     {}
func (*Comp) exprNode()      {}
func (*BadExpr) exprNode()   {}

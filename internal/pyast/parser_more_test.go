package pyast

import (
	"testing"
)

func TestParseYieldForms(t *testing.T) {
	src := `def gen():
    yield
    yield 1
    yield 1, 2
    yield from inner()
    x = yield value
`
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	var yields []*Yield
	Walk(fd, func(n Node) bool {
		if y, ok := n.(*Yield); ok {
			yields = append(yields, y)
		}
		return true
	})
	if len(yields) != 5 {
		t.Fatalf("yields = %d, want 5", len(yields))
	}
	if yields[0].Value != nil {
		t.Error("bare yield should have nil value")
	}
	if !yields[3].From {
		t.Error("yield from not recognized")
	}
}

func TestParseRaiseForms(t *testing.T) {
	src := "raise\nraise ValueError(\"x\")\nraise RuntimeError(\"y\") from exc\n"
	m := parseClean(t, src)
	r0 := m.Body[0].(*Raise)
	if r0.Exc != nil {
		t.Error("bare raise should carry nil exc")
	}
	r2 := m.Body[2].(*Raise)
	if r2.Cause == nil {
		t.Error("raise-from cause missing")
	}
}

func TestParseStarredAssignment(t *testing.T) {
	m := parseClean(t, "first, *rest = items\n")
	as := m.Body[0].(*Assign)
	tup := as.Targets[0].(*Tuple)
	if _, ok := tup.Elts[1].(*Starred); !ok {
		t.Errorf("starred target: %T", tup.Elts[1])
	}
}

func TestParseDictComprehension(t *testing.T) {
	m := parseClean(t, "d = {k: v * 2 for k, v in pairs if v}\n")
	comp := m.Body[0].(*Assign).Value.(*Comp)
	if comp.Kind != "dict" || comp.Value == nil || len(comp.Generators[0].Ifs) != 1 {
		t.Errorf("dict comp: %+v", comp)
	}
}

func TestParseNestedComprehension(t *testing.T) {
	m := parseClean(t, "flat = [x for row in grid for x in row]\n")
	comp := m.Body[0].(*Assign).Value.(*Comp)
	if len(comp.Generators) != 2 {
		t.Errorf("generators = %d, want 2", len(comp.Generators))
	}
}

func TestParseLambdaVariants(t *testing.T) {
	src := "f = lambda: 0\ng = lambda *args, **kw: len(args)\nh = lambda x, y=1: x + y\n"
	m := parseClean(t, src)
	f := m.Body[0].(*Assign).Value.(*Lambda)
	if len(f.Params) != 0 {
		t.Errorf("niladic lambda params: %v", f.Params)
	}
	g := m.Body[1].(*Assign).Value.(*Lambda)
	if len(g.Params) != 2 || !g.Params[0].Star || !g.Params[1].DoubleStar {
		t.Errorf("star lambda params: %+v", g.Params)
	}
}

func TestParseConditionalInCall(t *testing.T) {
	m := parseClean(t, "r = f(a if cond else b, key=1 if x else 2)\n")
	call := m.Body[0].(*Assign).Value.(*Call)
	if _, ok := call.Args[0].(*IfExp); !ok {
		t.Errorf("ternary arg: %T", call.Args[0])
	}
	if _, ok := call.Keywords[0].Value.(*IfExp); !ok {
		t.Errorf("ternary kwarg: %T", call.Keywords[0].Value)
	}
}

func TestParseWalrusInCallArg(t *testing.T) {
	m := parseClean(t, "if check(n := compute()):\n    use(n)\n")
	ifs := m.Body[0].(*If)
	call := ifs.Cond.(*Call)
	bo, ok := call.Args[0].(*BinOp)
	if !ok || bo.Op != ":=" {
		t.Errorf("walrus arg: %v", call.Args[0])
	}
}

func TestParseEllipsisAndBytes(t *testing.T) {
	m := parseClean(t, "def stub():\n    ...\nraw = b\"\\x00\\x01\"\n")
	fd := m.Body[0].(*FunctionDef)
	es := fd.Body[0].(*ExprStmt)
	if c, ok := es.Value.(*ConstLit); !ok || c.Kind != "..." {
		t.Errorf("ellipsis: %v", es.Value)
	}
}

func TestParseDecoratedClass(t *testing.T) {
	src := "@register\n@dataclass(frozen=True)\nclass Point:\n    x: int\n    y: int\n"
	m := parseClean(t, src)
	cd := m.Body[0].(*ClassDef)
	if len(cd.Decorators) != 2 {
		t.Errorf("class decorators = %d", len(cd.Decorators))
	}
}

func TestParseParenthesizedWith(t *testing.T) {
	src := "with (open(\"a\") as fa, open(\"b\") as fb):\n    pass\n"
	m := parseClean(t, src)
	w := m.Body[0].(*With)
	if len(w.Items) != 2 || w.Items[1].Target == nil {
		t.Errorf("with items: %+v", w.Items)
	}
}

func TestParsePositionalOnlyMarker(t *testing.T) {
	src := "def f(a, /, b, *, c):\n    return a + b + c\n"
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	if len(fd.Params) != 5 {
		t.Fatalf("params = %d, want 5 (a / b * c)", len(fd.Params))
	}
	if fd.Params[1].Name != "/" {
		t.Errorf("positional-only marker: %+v", fd.Params[1])
	}
	if !fd.Params[3].Star || fd.Params[3].Name != "" {
		t.Errorf("bare star: %+v", fd.Params[3])
	}
}

func TestParseChainedCallsAndSubscripts(t *testing.T) {
	m := parseClean(t, "x = obj.method(1)[0].attr(2)\n")
	// just verify the full trailer chain parses to a Call at the top
	if _, ok := m.Body[0].(*Assign).Value.(*Call); !ok {
		t.Errorf("chain top: %T", m.Body[0].(*Assign).Value)
	}
}

func TestParseUnaryAndPower(t *testing.T) {
	m := parseClean(t, "y = -x ** 2\nz = ~mask\nw = not ok\n")
	// -x**2 parses as -(x**2)
	u := m.Body[0].(*Assign).Value.(*UnaryOp)
	if u.Op != "-" {
		t.Errorf("unary op: %v", u.Op)
	}
	if _, ok := u.Operand.(*BinOp); !ok {
		t.Errorf("power under unary: %T", u.Operand)
	}
}

func TestParseSetComprehensionAndGenerator(t *testing.T) {
	m := parseClean(t, "s = {x % 7 for x in xs}\ntotal = sum(x * x for x in xs if x)\n")
	sc := m.Body[0].(*Assign).Value.(*Comp)
	if sc.Kind != "set" {
		t.Errorf("set comp: %v", sc.Kind)
	}
	call := m.Body[1].(*Assign).Value.(*Call)
	g := call.Args[0].(*Comp)
	if g.Kind != "generator" || len(g.Generators[0].Ifs) != 1 {
		t.Errorf("genexp: %+v", g)
	}
}

func TestParseAugAssignVariants(t *testing.T) {
	src := "a //= 2\nb **= 3\nc <<= 1\nd |= flags\ne @= m\n"
	m := parseClean(t, src)
	ops := []string{"//=", "**=", "<<=", "|=", "@="}
	for i, want := range ops {
		aug := m.Body[i].(*AugAssign)
		if aug.Op != want {
			t.Errorf("stmt %d: op %q, want %q", i, aug.Op, want)
		}
	}
}

func TestParseSliceTuplesAndSteps(t *testing.T) {
	m := parseClean(t, "a = m[1:2, 3:4]\nb = xs[::-1]\n")
	sub := m.Body[0].(*Assign).Value.(*Subscript)
	if _, ok := sub.Index.(*Tuple); !ok {
		t.Errorf("tuple slice index: %T", sub.Index)
	}
	rev := m.Body[1].(*Assign).Value.(*Subscript).Index.(*Slice)
	if rev.Step == nil {
		t.Error("negative step missing")
	}
}

func TestParseAsyncFor(t *testing.T) {
	src := "async def f(stream):\n    async for item in stream:\n        use(item)\n"
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	loop := fd.Body[0].(*For)
	if !loop.Async {
		t.Error("async for flag missing")
	}
}

func TestParseDecoratedAsyncDef(t *testing.T) {
	src := "@app.route(\"/x\")\nasync def handler():\n    return \"ok\"\n"
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	if !fd.Async || len(fd.Decorators) != 1 {
		t.Errorf("async decorated: async=%v decorators=%d", fd.Async, len(fd.Decorators))
	}
}

func TestParseTryElseOnly(t *testing.T) {
	src := "try:\n    f()\nexcept ValueError:\n    pass\nelse:\n    g()\n"
	m := parseClean(t, src)
	tr := m.Body[0].(*Try)
	if len(tr.Orelse) != 1 || tr.Finally != nil {
		t.Errorf("try-else: %+v", tr)
	}
}

func TestParseTryWithoutHandlersErrors(t *testing.T) {
	m, err := Parse("try:\n    f()\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Errors) == 0 {
		t.Error("try without except/finally should record an error")
	}
}

func TestParseReturnTuple(t *testing.T) {
	m := parseClean(t, "def f():\n    return 1, 2\n")
	ret := m.Body[0].(*FunctionDef).Body[0].(*Return)
	if _, ok := ret.Value.(*Tuple); !ok {
		t.Errorf("return tuple: %T", ret.Value)
	}
}

func TestParseKeywordOnlyCallSplat(t *testing.T) {
	m := parseClean(t, "f(**options)\n")
	call := m.Body[0].(*ExprStmt).Value.(*Call)
	if len(call.Keywords) != 1 || call.Keywords[0].Name != "" {
		t.Errorf("splat kwargs: %+v", call.Keywords)
	}
}

func TestModulePosEmpty(t *testing.T) {
	m := parseClean(t, "")
	if m.Pos().Line != 1 {
		t.Errorf("empty module pos: %v", m.Pos())
	}
}

func TestParseErrorString(t *testing.T) {
	m, err := Parse("def (:\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Errors) == 0 || m.Errors[0].Error() == "" {
		t.Error("ParseError.Error should render")
	}
}

func TestWalkSkipsChildrenOnFalse(t *testing.T) {
	m := parseClean(t, "def f():\n    if x:\n        g()\n")
	var visitedCall bool
	Walk(m, func(n Node) bool {
		if _, ok := n.(*FunctionDef); ok {
			return false // skip body
		}
		if _, ok := n.(*Call); ok {
			visitedCall = true
		}
		return true
	})
	if visitedCall {
		t.Error("Walk descended into skipped subtree")
	}
}

func TestMustParseOnBadTokenization(t *testing.T) {
	m := MustParse("s = 'unterminated")
	if m == nil {
		t.Fatal("MustParse returned nil")
	}
	if len(m.Errors) == 0 {
		t.Error("tokenizer failure should surface as a module error")
	}
}

func TestParseGlobalDelInlineSemis(t *testing.T) {
	m := parseClean(t, "x = 1; del x; pass\n")
	if len(m.Body) != 3 {
		t.Fatalf("body = %d", len(m.Body))
	}
	if _, ok := m.Body[1].(*Del); !ok {
		t.Errorf("del: %T", m.Body[1])
	}
}

func TestParseImportFromParenthesized(t *testing.T) {
	src := "from flask import (\n    Flask,\n    request,\n    make_response,\n)\n"
	m := parseClean(t, src)
	fr := m.Body[0].(*ImportFrom)
	if len(fr.Names) != 3 {
		t.Errorf("names = %+v", fr.Names)
	}
}

package pyast

import (
	"fmt"
	"strings"
	"testing"
)

// dump renders a tree as a position-free S-expression for structural
// comparison.
func dump(n Node) string {
	var b strings.Builder
	var walk func(Node)
	writeExprs := func(es []Expr) {
		for _, e := range es {
			walk(e)
		}
	}
	writeStmts := func(ss []Stmt) {
		for _, s := range ss {
			walk(s)
		}
	}
	walk = func(n Node) {
		if n == nil {
			b.WriteString("(nil)")
			return
		}
		switch x := n.(type) {
		case *Module:
			b.WriteString("(module ")
			writeStmts(x.Body)
			b.WriteString(")")
		case *Name:
			fmt.Fprintf(&b, "(name %s)", x.ID)
		case *NumberLit:
			fmt.Fprintf(&b, "(num %s)", x.Text)
		case *StringLit:
			fmt.Fprintf(&b, "(str %q)", x.Raw)
		case *ConstLit:
			fmt.Fprintf(&b, "(const %s)", x.Kind)
		case *Assign:
			b.WriteString("(assign ")
			writeExprs(x.Targets)
			walk(x.Value)
			b.WriteString(")")
		case *Call:
			b.WriteString("(call ")
			walk(x.Func)
			writeExprs(x.Args)
			for _, kw := range x.Keywords {
				fmt.Fprintf(&b, "(kw %s ", kw.Name)
				walk(kw.Value)
				b.WriteString(")")
			}
			b.WriteString(")")
		case *Attribute:
			fmt.Fprintf(&b, "(attr ")
			walk(x.Value)
			fmt.Fprintf(&b, " %s)", x.Attr)
		case *BinOp:
			fmt.Fprintf(&b, "(binop %s ", x.Op)
			walk(x.Left)
			walk(x.Right)
			b.WriteString(")")
		case *If:
			b.WriteString("(if ")
			walk(x.Cond)
			writeStmts(x.Body)
			b.WriteString(" else ")
			writeStmts(x.Orelse)
			b.WriteString(")")
		case *FunctionDef:
			fmt.Fprintf(&b, "(def %s async=%v ", x.Name, x.Async)
			for _, p := range x.Params {
				fmt.Fprintf(&b, "(param %s star=%v dstar=%v ", p.Name, p.Star, p.DoubleStar)
				walk(p.Default)
				walk(p.Annotation)
				b.WriteString(")")
			}
			writeExprs(x.Decorators)
			writeStmts(x.Body)
			b.WriteString(")")
		default:
			// generic fallback: type name plus children via Walk
			fmt.Fprintf(&b, "(%T ", n)
			first := true
			Walk(n, func(c Node) bool {
				if c == n {
					return true
				}
				if first {
					first = false
				}
				walk(c)
				return false // children handle their own subtrees
			})
			b.WriteString(")")
		}
	}
	walk(n)
	return b.String()
}

func TestUnparseGolden(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x=1\n", "x = 1\n"},
		{"import os,sys\n", "import os, sys\n"},
		{"from a.b import c as d\n", "from a.b import c as d\n"},
		{"def f(a,b=2,*args,**kw):\n    return a+b\n", "def f(a, b=2, *args, **kw):\n    return a + b\n"},
		{"if x:\n    y=1\nelse:\n    y=2\n", "if x:\n    y = 1\nelse:\n    y = 2\n"},
		{"while x<10:\n    x+=1\n", "while x < 10:\n    x += 1\n"},
		{"for k,v in d.items():\n    print(k)\n", "for (k, v) in d.items():\n    print(k)\n"},
		{"with open('f') as fh:\n    data=fh.read()\n", "with open('f') as fh:\n    data = fh.read()\n"},
		{"assert x>0, 'msg'\n", "assert x > 0, 'msg'\n"},
		{"del a,b\n", "del a, b\n"},
		{"raise ValueError('x') from e\n", "raise ValueError('x') from e\n"},
		{"lambda x:x\n", "lambda x: x\n"},
		{"xs=[i*2 for i in range(10) if i]\n", "xs = [i * 2 for i in range(10) if i]\n"},
		{"d={'a':1,**rest}\n", "d = {'a': 1, **rest}\n"},
		{"s=xs[1:5:2]\n", "s = xs[1:5:2]\n"},
		{"y=a if c else b\n", "y = a if c else b\n"},
	}
	for _, tc := range cases {
		m, err := Parse(tc.src)
		if err != nil || len(m.Errors) > 0 {
			t.Fatalf("%q: parse failed: %v %v", tc.src, err, m.Errors)
		}
		got := Unparse(m)
		if got != tc.want {
			t.Errorf("Unparse(%q) =\n%q\nwant\n%q", tc.src, got, tc.want)
		}
	}
}

// TestUnparseRoundTrip: unparse output must parse cleanly, and unparsing
// again must be a fixed point (idempotence).
func TestUnparseRoundTrip(t *testing.T) {
	sources := []string{
		"x = 1\ny = x + 2\n",
		"def handler(request):\n    uid = request.args.get(\"id\", \"\")\n    if not uid:\n        return \"missing\", 400\n    return {\"id\": uid}\n",
		"class C(Base, meta=M):\n    @staticmethod\n    def m(x):\n        return x\n",
		"try:\n    f()\nexcept ValueError as e:\n    handle(e)\nfinally:\n    done()\n",
		"async def fetch(url):\n    async with session.get(url) as r:\n        return await r.json()\n",
		"result = [x ** 2 for row in grid for x in row if x > 0]\n",
		"a, *rest = parts\n",
		"total = sum(v for v in values)\n",
		"if (n := len(xs)) > 3:\n    print(n)\n",
		"x = -y ** 2 + ~z\n",
		"flag = a and b or not c\n",
		"w = a < b <= c != d\n",
		"def gen():\n    yield 1\n    x = yield\n    yield from inner()\n",
	}
	for _, src := range sources {
		m1, err := Parse(src)
		if err != nil || len(m1.Errors) > 0 {
			t.Fatalf("%q: parse failed: %v %v", src, err, m1.Errors)
		}
		out1 := Unparse(m1)
		m2, err := Parse(out1)
		if err != nil {
			t.Fatalf("unparse output does not tokenize: %v\n%s", err, out1)
		}
		if len(m2.Errors) > 0 {
			t.Fatalf("unparse output does not parse: %v\n%s", m2.Errors, out1)
		}
		out2 := Unparse(m2)
		if out1 != out2 {
			t.Errorf("unparse not idempotent for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
		// structural equivalence of the two trees
		if dump(m1) != dump(m2) {
			t.Errorf("structure changed across round trip for %q:\n%s\nvs\n%s", src, dump(m1), dump(m2))
		}
	}
}

func TestUnparseEmptyBodiesGetPass(t *testing.T) {
	m := &Module{Body: []Stmt{&FunctionDef{Name: "f"}}}
	out := Unparse(m)
	if !strings.Contains(out, "def f():\n    pass\n") {
		t.Errorf("empty body: %q", out)
	}
}

func TestUnparseBadStmtCommented(t *testing.T) {
	m, err := Parse("def broken(:)\nx = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	out := Unparse(m)
	if !strings.Contains(out, "# unparseable") {
		t.Errorf("bad stmt not surfaced: %q", out)
	}
	if !strings.Contains(out, "x = 1") {
		t.Errorf("good stmt lost: %q", out)
	}
}

func TestUnparseExprAndStmtHelpers(t *testing.T) {
	m := MustParse("y = f(a, b=1)\n")
	as := m.Body[0].(*Assign)
	if got := UnparseExpr(as.Value); got != "f(a, b=1)" {
		t.Errorf("UnparseExpr = %q", got)
	}
	if got := UnparseStmt(as, 1); got != "    y = f(a, b=1)\n" {
		t.Errorf("UnparseStmt = %q", got)
	}
}

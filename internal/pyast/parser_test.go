package pyast

import (
	"strings"
	"testing"
	"testing/quick"
)

func parseClean(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Errors) > 0 {
		t.Fatalf("unexpected recovered errors: %v", m.Errors)
	}
	return m
}

func TestParseAssignment(t *testing.T) {
	m := parseClean(t, "x = 1\n")
	if len(m.Body) != 1 {
		t.Fatalf("body len %d", len(m.Body))
	}
	as, ok := m.Body[0].(*Assign)
	if !ok {
		t.Fatalf("got %T, want *Assign", m.Body[0])
	}
	if n, ok := as.Targets[0].(*Name); !ok || n.ID != "x" {
		t.Errorf("target = %v", as.Targets[0])
	}
	if v, ok := as.Value.(*NumberLit); !ok || v.Text != "1" {
		t.Errorf("value = %v", as.Value)
	}
}

func TestParseChainedAssignment(t *testing.T) {
	m := parseClean(t, "a = b = 2\n")
	as := m.Body[0].(*Assign)
	if len(as.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(as.Targets))
	}
}

func TestParseAugAndAnnAssign(t *testing.T) {
	m := parseClean(t, "x += 1\ny: int = 2\nz: str\n")
	if _, ok := m.Body[0].(*AugAssign); !ok {
		t.Errorf("stmt 0: %T", m.Body[0])
	}
	ann, ok := m.Body[1].(*AnnAssign)
	if !ok || ann.Value == nil {
		t.Errorf("stmt 1: %T", m.Body[1])
	}
	ann2, ok := m.Body[2].(*AnnAssign)
	if !ok || ann2.Value != nil {
		t.Errorf("stmt 2: %T", m.Body[2])
	}
}

func TestParseImports(t *testing.T) {
	src := "import os\nimport os.path as p, sys\nfrom flask import Flask, request\nfrom . import sibling\nfrom ..pkg import mod as m\nfrom typing import *\n"
	m := parseClean(t, src)
	im := m.Body[0].(*Import)
	if im.Names[0].Name != "os" {
		t.Errorf("import 0: %+v", im.Names)
	}
	im2 := m.Body[1].(*Import)
	if im2.Names[0].Name != "os.path" || im2.Names[0].AsName != "p" || im2.Names[1].Name != "sys" {
		t.Errorf("import 1: %+v", im2.Names)
	}
	fr := m.Body[2].(*ImportFrom)
	if fr.Module != "flask" || len(fr.Names) != 2 {
		t.Errorf("from: %+v", fr)
	}
	rel := m.Body[3].(*ImportFrom)
	if rel.Level != 1 || rel.Module != "" {
		t.Errorf("relative: %+v", rel)
	}
	rel2 := m.Body[4].(*ImportFrom)
	if rel2.Level != 2 || rel2.Module != "pkg" || rel2.Names[0].AsName != "m" {
		t.Errorf("relative 2: %+v", rel2)
	}
	star := m.Body[5].(*ImportFrom)
	if !star.Star {
		t.Errorf("star import: %+v", star)
	}
}

func TestParseFunctionDef(t *testing.T) {
	src := `def greet(name, greeting="hello", *args, **kwargs) -> str:
    return f"{greeting}, {name}"
`
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	if fd.Name != "greet" || len(fd.Params) != 4 {
		t.Fatalf("fd = %+v", fd)
	}
	if fd.Params[1].Default == nil {
		t.Error("greeting should have default")
	}
	if !fd.Params[2].Star || !fd.Params[3].DoubleStar {
		t.Error("star params not recognized")
	}
	if fd.Returns == nil {
		t.Error("missing return annotation")
	}
	if _, ok := fd.Body[0].(*Return); !ok {
		t.Errorf("body[0] = %T", fd.Body[0])
	}
}

func TestParseDecoratedFunction(t *testing.T) {
	src := "@app.route(\"/users\", methods=[\"GET\", \"POST\"])\n@login_required\ndef users():\n    pass\n"
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	if len(fd.Decorators) != 2 {
		t.Fatalf("decorators = %d", len(fd.Decorators))
	}
	call, ok := fd.Decorators[0].(*Call)
	if !ok {
		t.Fatalf("decorator 0 = %T", fd.Decorators[0])
	}
	if CallName(call) != "app.route" {
		t.Errorf("decorator call = %q", CallName(call))
	}
	if len(call.Keywords) != 1 || call.Keywords[0].Name != "methods" {
		t.Errorf("keywords = %+v", call.Keywords)
	}
}

func TestParseClassDef(t *testing.T) {
	src := "class User(Base, metaclass=Meta):\n    def __init__(self):\n        self.name = \"\"\n"
	m := parseClean(t, src)
	cd := m.Body[0].(*ClassDef)
	if cd.Name != "User" || len(cd.Bases) != 1 || len(cd.Keywords) != 1 {
		t.Fatalf("cd = %+v", cd)
	}
	if len(cd.Body) != 1 {
		t.Fatalf("class body = %d", len(cd.Body))
	}
}

func TestParseIfElifElse(t *testing.T) {
	src := "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n"
	m := parseClean(t, src)
	ifs := m.Body[0].(*If)
	if len(ifs.Orelse) != 1 {
		t.Fatalf("orelse = %d", len(ifs.Orelse))
	}
	nested, ok := ifs.Orelse[0].(*If)
	if !ok {
		t.Fatalf("elif not nested: %T", ifs.Orelse[0])
	}
	if len(nested.Orelse) != 1 {
		t.Errorf("else missing: %+v", nested)
	}
}

func TestParseLoops(t *testing.T) {
	src := "for k, v in items.items():\n    print(k)\nelse:\n    done()\nwhile x < 10:\n    x += 1\n"
	m := parseClean(t, src)
	f := m.Body[0].(*For)
	if _, ok := f.Target.(*Tuple); !ok {
		t.Errorf("for target = %T", f.Target)
	}
	if len(f.Orelse) != 1 {
		t.Errorf("for-else missing")
	}
	w := m.Body[1].(*While)
	if _, ok := w.Cond.(*Compare); !ok {
		t.Errorf("while cond = %T", w.Cond)
	}
}

func TestParseTryExcept(t *testing.T) {
	src := `try:
    risky()
except ValueError as e:
    handle(e)
except (TypeError, KeyError):
    pass
except:
    bare()
else:
    ok()
finally:
    cleanup()
`
	m := parseClean(t, src)
	tr := m.Body[0].(*Try)
	if len(tr.Handlers) != 3 {
		t.Fatalf("handlers = %d", len(tr.Handlers))
	}
	if tr.Handlers[0].Name != "e" {
		t.Errorf("handler 0 name = %q", tr.Handlers[0].Name)
	}
	if tr.Handlers[2].Type != nil {
		t.Errorf("bare except should have nil type")
	}
	if len(tr.Orelse) != 1 || len(tr.Finally) != 1 {
		t.Errorf("else/finally missing")
	}
}

func TestParseWith(t *testing.T) {
	src := "with open(\"f\") as fh, lock:\n    data = fh.read()\n"
	m := parseClean(t, src)
	w := m.Body[0].(*With)
	if len(w.Items) != 2 {
		t.Fatalf("items = %d", len(w.Items))
	}
	if w.Items[0].Target == nil || w.Items[1].Target != nil {
		t.Errorf("as-targets wrong: %+v", w.Items)
	}
}

func TestParseCallShapes(t *testing.T) {
	src := "r = requests.get(url, timeout=5, verify=False)\nsubprocess.run(cmd, shell=True)\nf(*args, **kwargs)\n"
	m := parseClean(t, src)
	as := m.Body[0].(*Assign)
	call := as.Value.(*Call)
	if CallName(call) != "requests.get" {
		t.Errorf("call name = %q", CallName(call))
	}
	if v := KeywordArg(call, "verify"); v == nil || !IsConst(v, "False") {
		t.Errorf("verify kwarg = %v", v)
	}
	run := m.Body[1].(*ExprStmt).Value.(*Call)
	if v := KeywordArg(run, "shell"); v == nil || !IsConst(v, "True") {
		t.Errorf("shell kwarg = %v", v)
	}
	fcall := m.Body[2].(*ExprStmt).Value.(*Call)
	if len(fcall.Args) != 1 || len(fcall.Keywords) != 1 {
		t.Errorf("star args: %+v", fcall)
	}
	if _, ok := fcall.Args[0].(*Starred); !ok {
		t.Errorf("arg 0 = %T", fcall.Args[0])
	}
}

func TestParseExpressions(t *testing.T) {
	src := "x = a + b * c ** 2 - -d\nok = a and b or not c\ny = 1 if cond else 2\nz = lambda a, b=2: a + b\nw = a < b <= c\nv = x is not None and y not in xs\n"
	m := parseClean(t, src)
	if _, ok := m.Body[0].(*Assign).Value.(*BinOp); !ok {
		t.Errorf("arith: %T", m.Body[0].(*Assign).Value)
	}
	if bo, ok := m.Body[1].(*Assign).Value.(*BoolOp); !ok || bo.Op != "or" {
		t.Errorf("boolop: %v", m.Body[1].(*Assign).Value)
	}
	if _, ok := m.Body[2].(*Assign).Value.(*IfExp); !ok {
		t.Errorf("ifexp: %T", m.Body[2].(*Assign).Value)
	}
	if lam, ok := m.Body[3].(*Assign).Value.(*Lambda); !ok || len(lam.Params) != 2 {
		t.Errorf("lambda: %v", m.Body[3].(*Assign).Value)
	}
	cmp, ok := m.Body[4].(*Assign).Value.(*Compare)
	if !ok || len(cmp.Ops) != 2 {
		t.Errorf("chained compare: %v", m.Body[4].(*Assign).Value)
	}
	v := m.Body[5].(*Assign).Value.(*BoolOp)
	left := v.Values[0].(*Compare)
	if left.Ops[0] != "is not" {
		t.Errorf("is not: %v", left.Ops)
	}
	right := v.Values[1].(*Compare)
	if right.Ops[0] != "not in" {
		t.Errorf("not in: %v", right.Ops)
	}
}

func TestParseContainers(t *testing.T) {
	src := "a = [1, 2, 3]\nb = (1,)\nc = {1: 'x', **extra}\nd = {1, 2}\ne = []\nf = {}\ng = ()\n"
	m := parseClean(t, src)
	if l := m.Body[0].(*Assign).Value.(*List); len(l.Elts) != 3 {
		t.Errorf("list: %v", l)
	}
	if tu := m.Body[1].(*Assign).Value.(*Tuple); len(tu.Elts) != 1 {
		t.Errorf("tuple: %v", tu)
	}
	d := m.Body[2].(*Assign).Value.(*Dict)
	if len(d.Keys) != 2 || d.Keys[1] != nil {
		t.Errorf("dict with **: %v", d)
	}
	if s := m.Body[3].(*Assign).Value.(*Set); len(s.Elts) != 2 {
		t.Errorf("set: %v", s)
	}
	if _, ok := m.Body[4].(*Assign).Value.(*List); !ok {
		t.Errorf("empty list")
	}
	if _, ok := m.Body[5].(*Assign).Value.(*Dict); !ok {
		t.Errorf("empty dict")
	}
	if _, ok := m.Body[6].(*Assign).Value.(*Tuple); !ok {
		t.Errorf("empty tuple")
	}
}

func TestParseComprehensions(t *testing.T) {
	src := "a = [x*2 for x in xs if x > 0]\nb = {k: v for k, v in d.items()}\nc = {x for x in xs}\ng = sum(x for x in xs)\n"
	m := parseClean(t, src)
	lc := m.Body[0].(*Assign).Value.(*Comp)
	if lc.Kind != "list" || len(lc.Generators) != 1 || len(lc.Generators[0].Ifs) != 1 {
		t.Errorf("listcomp: %+v", lc)
	}
	dc := m.Body[1].(*Assign).Value.(*Comp)
	if dc.Kind != "dict" || dc.Value == nil {
		t.Errorf("dictcomp: %+v", dc)
	}
	sc := m.Body[2].(*Assign).Value.(*Comp)
	if sc.Kind != "set" {
		t.Errorf("setcomp: %+v", sc)
	}
	call := m.Body[3].(*Assign).Value.(*Call)
	if _, ok := call.Args[0].(*Comp); !ok {
		t.Errorf("genexp arg: %T", call.Args[0])
	}
}

func TestParseSubscriptsAndSlices(t *testing.T) {
	src := "a = xs[0]\nb = xs[1:5]\nc = xs[::2]\nd = m['key']\ne = grid[i][j]\n"
	m := parseClean(t, src)
	if _, ok := m.Body[0].(*Assign).Value.(*Subscript); !ok {
		t.Errorf("subscript")
	}
	sl := m.Body[1].(*Assign).Value.(*Subscript).Index.(*Slice)
	if sl.Lower == nil || sl.Upper == nil {
		t.Errorf("slice: %+v", sl)
	}
	sl2 := m.Body[2].(*Assign).Value.(*Subscript).Index.(*Slice)
	if sl2.Step == nil {
		t.Errorf("step slice: %+v", sl2)
	}
}

func TestParseStringConcatAndFString(t *testing.T) {
	src := "s = 'a' 'b' \"c\"\nt = f\"hello {name}!\"\n"
	m := parseClean(t, src)
	sl := m.Body[0].(*Assign).Value.(*StringLit)
	if sl.Raw != `'a' 'b' "c"` && sl.Raw != `'a''b'"c"` {
		t.Errorf("concat raw = %q", sl.Raw)
	}
	fs := m.Body[1].(*Assign).Value.(*StringLit)
	if !fs.FString {
		t.Error("f-string flag missing")
	}
}

func TestUnquote(t *testing.T) {
	cases := map[string]string{
		`'abc'`:       "abc",
		`"abc"`:       "abc",
		`'''abc'''`:   "abc",
		`"""a"b"""`:   `a"b`,
		`r'a\nb'`:     `a\nb`,
		`'a\nb'`:      "a\nb",
		`b'bytes'`:    "bytes",
		`f"hi {x}"`:   "hi {x}",
		`'esc\'d'`:    "esc'd",
		`'tab\there'`: "tab\there",
		`'unk\qesc'`:  `unk\qesc`,
	}
	for in, want := range cases {
		if got := Unquote(in); got != want {
			t.Errorf("Unquote(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseGlobalNonlocalDel(t *testing.T) {
	src := "global a, b\ndef f():\n    nonlocal c\n    del d, e[0]\n"
	m := parseClean(t, src)
	g := m.Body[0].(*Global)
	if len(g.Names) != 2 {
		t.Errorf("global: %v", g.Names)
	}
	fd := m.Body[1].(*FunctionDef)
	if _, ok := fd.Body[0].(*Nonlocal); !ok {
		t.Errorf("nonlocal: %T", fd.Body[0])
	}
	del := fd.Body[1].(*Del)
	if len(del.Targets) != 2 {
		t.Errorf("del: %v", del.Targets)
	}
}

func TestParseSemicolons(t *testing.T) {
	m := parseClean(t, "x = 1; y = 2; z = 3\n")
	if len(m.Body) != 3 {
		t.Fatalf("body = %d, want 3", len(m.Body))
	}
}

func TestParseInlineSuite(t *testing.T) {
	m := parseClean(t, "if x: y = 1\n")
	ifs := m.Body[0].(*If)
	if len(ifs.Body) != 1 {
		t.Fatalf("inline body = %d", len(ifs.Body))
	}
}

func TestParseAsyncDef(t *testing.T) {
	src := "async def fetch(url):\n    async with session.get(url) as r:\n        return await r.json()\n"
	m := parseClean(t, src)
	fd := m.Body[0].(*FunctionDef)
	if !fd.Async {
		t.Error("async flag missing")
	}
	w := fd.Body[0].(*With)
	if !w.Async {
		t.Error("async with flag missing")
	}
	ret := w.Body[0].(*Return)
	if _, ok := ret.Value.(*Await); !ok {
		t.Errorf("await: %T", ret.Value)
	}
}

func TestParseWalrus(t *testing.T) {
	src := "if (n := len(xs)) > 10:\n    pass\nwhile chunk := f.read():\n    pass\n"
	m := parseClean(t, src)
	ifs := m.Body[0].(*If)
	cmp := ifs.Cond.(*Compare)
	if bo, ok := cmp.Left.(*BinOp); !ok || bo.Op != ":=" {
		t.Errorf("walrus in if: %T", cmp.Left)
	}
	wh := m.Body[1].(*While)
	if bo, ok := wh.Cond.(*BinOp); !ok || bo.Op != ":=" {
		t.Errorf("walrus in while: %T", wh.Cond)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// Note the closed paren: an unclosed one would implicitly join the
	// next line, swallowing "y = 2" into the bad statement (as CPython's
	// tokenizer does too).
	src := "x = 1\ndef broken(:)\ny = 2\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse should recover, got %v", err)
	}
	if len(m.Errors) == 0 {
		t.Fatal("expected recorded errors")
	}
	var goodAssigns int
	for _, s := range m.Body {
		if _, ok := s.(*Assign); ok {
			goodAssigns++
		}
	}
	if goodAssigns != 2 {
		t.Errorf("recovered assigns = %d, want 2 (x and y)", goodAssigns)
	}
}

func TestParseTruncatedSnippet(t *testing.T) {
	// AI generators frequently emit code cut mid-function; the parser must
	// produce a usable tree anyway.
	src := "def handler(request):\n    data = request.get_json()\n    query = \"SELECT * FROM users WHERE id = \" + data[\"id\"]\n    cursor.execute("
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(Functions(m)) != 1 {
		t.Errorf("functions = %d", len(Functions(m)))
	}
}

func TestWalkAndHelpers(t *testing.T) {
	src := `import hashlib
from flask import Flask

def f(x):
    h = hashlib.md5(x).hexdigest()
    return h
`
	m := parseClean(t, src)
	calls := Calls(m)
	var names []string
	for _, c := range calls {
		names = append(names, CallName(c))
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "hashlib.md5") {
		t.Errorf("calls = %v", names)
	}
	mods := ImportedModules(m)
	if !mods["hashlib"] || !mods["flask"] {
		t.Errorf("imports = %v", mods)
	}
	var count int
	Walk(m, func(Node) bool { count++; return true })
	if count < 10 {
		t.Errorf("walk visited only %d nodes", count)
	}
}

func TestDottedName(t *testing.T) {
	m := parseClean(t, "x = a.b.c.d\ny = f().g\n")
	attr := m.Body[0].(*Assign).Value
	if DottedName(attr) != "a.b.c.d" {
		t.Errorf("dotted = %q", DottedName(attr))
	}
	mixed := m.Body[1].(*Assign).Value
	if DottedName(mixed) != "" {
		t.Errorf("call-rooted attr should give empty, got %q", DottedName(mixed))
	}
}

func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		m, err := Parse(src)
		return err != nil || m != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnPythonLike(t *testing.T) {
	fragments := []string{
		"def f(", "class C", "if x", "import", "from x import",
		"x = [1, 2", "try:\n  pass", "lambda", "@", "return return",
		"x = {", "f(a=", "for in:", "with as:", "x ** = 1",
		"async", "await", "yield from", "del", "raise from x",
	}
	for _, frag := range fragments {
		for _, suffix := range []string{"", "\n", "\n    pass\n", ")\n"} {
			src := frag + suffix
			m, err := Parse(src)
			if err == nil && m == nil {
				t.Errorf("%q: nil module without error", src)
			}
		}
	}
}

func BenchmarkParseRealistic(b *testing.B) {
	src := strings.Repeat(`from flask import Flask, request
import sqlite3

app = Flask(__name__)

@app.route("/user")
def get_user():
    uid = request.args.get("id", "")
    conn = sqlite3.connect("app.db")
    cur = conn.cursor()
    cur.execute("SELECT * FROM users WHERE id = " + uid)
    rows = cur.fetchall()
    return {"users": [dict(r) for r in rows]}

if __name__ == "__main__":
    app.run(debug=True)
`, 10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

package pyast

import (
	"reflect"
	"sort"
	"testing"
)

// walkNames parses src, fails the test on any recovered parse error, and
// returns every Name identifier visited by Walk in visit order.
func walkNames(t *testing.T, src string) []string {
	t.Helper()
	m := MustParse(src)
	if len(m.Errors) > 0 {
		t.Fatalf("parse %q: recovered errors %v", src, m.Errors)
	}
	var ids []string
	Walk(m, func(n Node) bool {
		if nm, ok := n.(*Name); ok {
			ids = append(ids, nm.ID)
		}
		return true
	})
	return ids
}

// TestWalrusContexts locks in the parser fix for walrus ":=" targets inside
// display and subscript contexts. Before the fix, list/set/tuple displays and
// subscripts rejected ":=" with a recovered BadStmt, which made the CFG
// builder lose the binding entirely.
func TestWalrusContexts(t *testing.T) {
	cases := []struct {
		src   string
		names []string
	}{
		{"lst = [y := f(x)]\n", []string{"lst", "y", "f", "x"}},
		{"s = {y := f(x)}\n", []string{"s", "y", "f", "x"}},
		{"t = (y := 1, z := 2)\n", []string{"t", "y", "z"}},
		{"i = arr[j := 0]\n", []string{"i", "arr", "j"}},
		{"r = f(y := g(x))\n", []string{"r", "f", "y", "g", "x"}},
		{"while chunk := rd():\n    pass\n", []string{"chunk", "rd"}},
		{"if (m := fetch(q)) > lo:\n    pass\n", []string{"m", "fetch", "q", "lo"}},
	}
	for _, tc := range cases {
		got := walkNames(t, tc.src)
		if !reflect.DeepEqual(got, tc.names) {
			t.Errorf("%q: Walk names = %v, want %v", tc.src, got, tc.names)
		}
	}
}

// TestWalrusBindsAsBinOp asserts the shape the taint engine relies on: a
// walrus expression is a BinOp with Op ":=" and a Name target, wherever it
// appears.
func TestWalrusBindsAsBinOp(t *testing.T) {
	for _, src := range []string{
		"lst = [y := f(x)]\n",
		"i = arr[y := 0]\n",
		"s = {y := f(x)}\n",
	} {
		m := MustParse(src)
		found := false
		Walk(m, func(n Node) bool {
			if b, ok := n.(*BinOp); ok && b.Op == ":=" {
				if nm, ok := b.Left.(*Name); !ok || nm.ID != "y" {
					t.Errorf("%q: walrus target = %#v, want Name y", src, b.Left)
				}
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("%q: no walrus BinOp in tree", src)
		}
	}
}

// TestChainedComparison asserts chained comparisons keep every operand as a
// visited child (one Compare node, n ops, n comparators).
func TestChainedComparison(t *testing.T) {
	m := MustParse("v = x < y <= z != w\n")
	if len(m.Errors) > 0 {
		t.Fatalf("recovered errors: %v", m.Errors)
	}
	var cmp *Compare
	Walk(m, func(n Node) bool {
		if c, ok := n.(*Compare); ok {
			cmp = c
		}
		return true
	})
	if cmp == nil {
		t.Fatal("no Compare node")
	}
	if want := []string{"<", "<=", "!="}; !reflect.DeepEqual(cmp.Ops, want) {
		t.Errorf("Ops = %v, want %v", cmp.Ops, want)
	}
	if len(cmp.Comparators) != 3 {
		t.Errorf("Comparators = %d, want 3", len(cmp.Comparators))
	}
	got := walkNames(t, "v = x < y <= z != w\n")
	if want := []string{"v", "x", "y", "z", "w"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
}

// TestWalkVisitsEveryChild is a completeness check over the constructs the
// CFG builder traverses: for each snippet, every identifier in the source
// must surface as a walked Name node (or a declared binder such as a
// function/class name or parameter). Guards against Walk silently skipping a
// child slot of ternary/comprehension/lambda nodes.
func TestWalkVisitsEveryChild(t *testing.T) {
	cases := []struct {
		src  string
		want []string // sorted unique identifiers expected via Walk Names
	}{
		{"x = a if b else c\n", []string{"a", "b", "c", "x"}},
		{"f = lambda p, q=dflt: p + q\n", []string{"dflt", "f", "p", "q"}},
		{"ys = [elt for it in src if cond]\n", []string{"cond", "elt", "it", "src", "ys"}},
		{"d = {k: v for k, v in pairs}\n", []string{"d", "k", "pairs", "v"}},
		{"g = (n := compute())\n", []string{"compute", "g", "n"}},
		{"a = b[lo:hi:st]\n", []string{"a", "b", "hi", "lo", "st"}},
		{"zs = [x for x in xs if (y := f(x))]\n", []string{"f", "x", "xs", "y", "zs"}},
		{"cond = a < (b := c) < d\n", []string{"a", "b", "c", "cond", "d"}},
	}
	for _, tc := range cases {
		got := walkNames(t, tc.src)
		uniq := map[string]bool{}
		for _, id := range got {
			uniq[id] = true
		}
		var sorted []string
		for id := range uniq {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, tc.want) {
			t.Errorf("%q: walked identifiers %v, want %v", tc.src, sorted, tc.want)
		}
	}
}

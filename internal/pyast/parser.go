package pyast

import (
	"fmt"
	"strings"

	"github.com/dessertlab/patchitpy/internal/pytoken"
)

// Parse tokenizes and parses src into a Module. A non-nil error is returned
// only for failures that prevent producing any tree at all (tokenizer
// errors); statement-level syntax problems are recovered and recorded in
// Module.Errors, mirroring how the paper's tool tolerates incomplete
// AI-generated snippets.
func Parse(src string) (*Module, error) {
	toks, err := pytoken.Tokenize(src)
	if err != nil {
		return nil, fmt.Errorf("tokenize: %w", err)
	}
	p := &parser{toks: toks}
	return p.parseModule(), nil
}

// MustParse parses src and ignores recovered errors. It is a convenience
// for tests and examples working with known-good sources.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		return &Module{Errors: []*ParseError{{Msg: err.Error()}}}
	}
	return m
}

type parser struct {
	toks []pytoken.Token
	pos  int
	mod  *Module
}

// bailout carries a recovered syntax error up to the statement loop.
// Panic/recover is used strictly as internal control flow within this
// package (the same pattern as encoding/json); it never escapes Parse.
type bailout struct{ err *ParseError }

func (p *parser) errorf(format string, args ...any) {
	panic(bailout{err: &ParseError{Msg: fmt.Sprintf(format, args...), Position: p.peek().Pos}})
}

func (p *parser) peek() pytoken.Token { return p.toks[p.pos] }

func (p *parser) at(kind pytoken.Kind, text string) bool {
	t := p.peek()
	return t.Kind == kind && t.Text == text
}

func (p *parser) atKind(kind pytoken.Kind) bool { return p.peek().Kind == kind }

func (p *parser) next() pytoken.Token {
	t := p.toks[p.pos]
	if t.Kind != pytoken.KindEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind pytoken.Kind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind pytoken.Kind, text string) pytoken.Token {
	if !p.at(kind, text) {
		p.errorf("expected %q, found %s", text, p.peek())
	}
	return p.next()
}

func (p *parser) expectKind(kind pytoken.Kind) pytoken.Token {
	if !p.atKind(kind) {
		p.errorf("expected %s, found %s", kind, p.peek())
	}
	return p.next()
}

func (p *parser) parseModule() *Module {
	p.mod = &Module{}
	for !p.atKind(pytoken.KindEOF) {
		if p.atKind(pytoken.KindNewline) || p.atKind(pytoken.KindNL) {
			p.next()
			continue
		}
		// Stray indentation at top level (common in AI snippets cut from a
		// larger function body): tolerate by treating the indented block as
		// top-level statements.
		if p.atKind(pytoken.KindIndent) || p.atKind(pytoken.KindDedent) {
			p.next()
			continue
		}
		p.mod.Body = append(p.mod.Body, p.parseStatementRecover()...)
	}
	return p.mod
}

// parseStatementRecover parses one logical line (one compound statement or
// several ';'-separated simple statements), converting syntax panics into a
// BadStmt plus a recorded error and resynchronizing at the next logical
// line.
func (p *parser) parseStatementRecover() (stmts []Stmt) {
	start := p.pos
	defer func() {
		if r := recover(); r != nil {
			b, ok := r.(bailout)
			if !ok {
				panic(r)
			}
			p.mod.Errors = append(p.mod.Errors, b.err)
			// resync: skip to after the next NEWLINE
			if p.pos == start {
				p.next()
			}
			for !p.atKind(pytoken.KindEOF) && !p.atKind(pytoken.KindNewline) {
				p.next()
			}
			if p.atKind(pytoken.KindNewline) {
				p.next()
			}
			var parts []string
			for i := start; i < p.pos && i < len(p.toks); i++ {
				parts = append(parts, p.toks[i].Text)
			}
			stmts = []Stmt{&BadStmt{Source: strings.Join(parts, " "), Position: p.toks[start].Pos}}
		}
	}()
	return p.parseStatement()
}

func (p *parser) parseStatement() []Stmt {
	t := p.peek()
	if t.Kind == pytoken.KindKeyword {
		switch t.Text {
		case "if":
			return []Stmt{p.parseIf()}
		case "while":
			return []Stmt{p.parseWhile()}
		case "for":
			return []Stmt{p.parseFor(false)}
		case "try":
			return []Stmt{p.parseTry()}
		case "with":
			return []Stmt{p.parseWith(false)}
		case "def":
			return []Stmt{p.parseFunctionDef(nil, false)}
		case "class":
			return []Stmt{p.parseClassDef(nil)}
		case "async":
			return []Stmt{p.parseAsync()}
		}
	}
	if t.Is(pytoken.KindOp, "@") {
		return []Stmt{p.parseDecorated()}
	}
	return p.parseSimpleStatements()
}

func (p *parser) parseDecorated() Stmt {
	var decorators []Expr
	for p.at(pytoken.KindOp, "@") {
		p.next()
		decorators = append(decorators, p.parseTest())
		p.expectKind(pytoken.KindNewline)
		for p.atKind(pytoken.KindNL) {
			p.next()
		}
	}
	switch {
	case p.at(pytoken.KindKeyword, "def"):
		return p.parseFunctionDef(decorators, false)
	case p.at(pytoken.KindKeyword, "class"):
		return p.parseClassDef(decorators)
	case p.at(pytoken.KindKeyword, "async"):
		pos := p.next().Pos
		if p.at(pytoken.KindKeyword, "def") {
			fd := p.parseFunctionDef(decorators, true)
			if f, ok := fd.(*FunctionDef); ok {
				f.Position = pos
			}
			return fd
		}
		p.errorf("expected def after async")
	}
	p.errorf("expected def or class after decorators")
	return nil
}

func (p *parser) parseAsync() Stmt {
	pos := p.expect(pytoken.KindKeyword, "async").Pos
	switch {
	case p.at(pytoken.KindKeyword, "def"):
		s := p.parseFunctionDef(nil, true)
		if f, ok := s.(*FunctionDef); ok {
			f.Position = pos
		}
		return s
	case p.at(pytoken.KindKeyword, "for"):
		s := p.parseFor(true)
		if f, ok := s.(*For); ok {
			f.Position = pos
		}
		return s
	case p.at(pytoken.KindKeyword, "with"):
		s := p.parseWith(true)
		if w, ok := s.(*With); ok {
			w.Position = pos
		}
		return s
	}
	p.errorf("expected def, for or with after async")
	return nil
}

func (p *parser) parseIf() Stmt {
	pos := p.expect(pytoken.KindKeyword, "if").Pos
	cond := p.parseNamedTest()
	body := p.parseSuite()
	node := &If{Cond: cond, Body: body, Position: pos}
	switch {
	case p.at(pytoken.KindKeyword, "elif"):
		elifPos := p.peek().Pos
		p.toks[p.pos].Text = "if" // rewrite elif -> nested if
		nested := p.parseIf()
		if n, ok := nested.(*If); ok {
			n.Position = elifPos
		}
		node.Orelse = []Stmt{nested}
	case p.at(pytoken.KindKeyword, "else"):
		p.next()
		node.Orelse = p.parseSuite()
	}
	return node
}

func (p *parser) parseWhile() Stmt {
	pos := p.expect(pytoken.KindKeyword, "while").Pos
	cond := p.parseNamedTest()
	body := p.parseSuite()
	node := &While{Cond: cond, Body: body, Position: pos}
	if p.accept(pytoken.KindKeyword, "else") {
		node.Orelse = p.parseSuite()
	}
	return node
}

func (p *parser) parseFor(async bool) Stmt {
	pos := p.expect(pytoken.KindKeyword, "for").Pos
	target := p.parseTargetList()
	p.expect(pytoken.KindKeyword, "in")
	iter := p.parseTestList()
	body := p.parseSuite()
	node := &For{Target: target, Iter: iter, Body: body, Async: async, Position: pos}
	if p.accept(pytoken.KindKeyword, "else") {
		node.Orelse = p.parseSuite()
	}
	return node
}

func (p *parser) parseTry() Stmt {
	pos := p.expect(pytoken.KindKeyword, "try").Pos
	node := &Try{Position: pos, Body: p.parseSuite()}
	for p.at(pytoken.KindKeyword, "except") {
		hpos := p.next().Pos
		h := ExceptHandler{Position: hpos}
		if !p.at(pytoken.KindOp, ":") {
			h.Type = p.parseTest()
			if p.accept(pytoken.KindKeyword, "as") {
				h.Name = p.expectKind(pytoken.KindName).Text
			}
		}
		h.Body = p.parseSuite()
		node.Handlers = append(node.Handlers, h)
	}
	if p.accept(pytoken.KindKeyword, "else") {
		node.Orelse = p.parseSuite()
	}
	if p.accept(pytoken.KindKeyword, "finally") {
		node.Finally = p.parseSuite()
	}
	if len(node.Handlers) == 0 && node.Finally == nil {
		p.errorf("try statement needs except or finally")
	}
	return node
}

func (p *parser) parseWith(async bool) Stmt {
	pos := p.expect(pytoken.KindKeyword, "with").Pos
	node := &With{Async: async, Position: pos}
	paren := p.accept(pytoken.KindOp, "(") // PEP 617 parenthesized items
	for {
		item := WithItem{Context: p.parseTest()}
		if p.accept(pytoken.KindKeyword, "as") {
			item.Target = p.parseTarget()
		}
		node.Items = append(node.Items, item)
		if !p.accept(pytoken.KindOp, ",") {
			break
		}
		if paren && p.at(pytoken.KindOp, ")") {
			break
		}
	}
	if paren {
		p.expect(pytoken.KindOp, ")")
	}
	node.Body = p.parseSuite()
	return node
}

func (p *parser) parseFunctionDef(decorators []Expr, async bool) Stmt {
	pos := p.expect(pytoken.KindKeyword, "def").Pos
	name := p.expectKind(pytoken.KindName).Text
	p.expect(pytoken.KindOp, "(")
	params := p.parseParams()
	p.expect(pytoken.KindOp, ")")
	var returns Expr
	if p.accept(pytoken.KindOp, "->") {
		returns = p.parseTest()
	}
	body := p.parseSuite()
	return &FunctionDef{
		Name: name, Params: params, Body: body,
		Decorators: decorators, Returns: returns, Async: async, Position: pos,
	}
}

func (p *parser) parseParams() []Param {
	var params []Param
	for !p.at(pytoken.KindOp, ")") && !p.atKind(pytoken.KindEOF) {
		var param Param
		switch {
		case p.accept(pytoken.KindOp, "**"):
			param.DoubleStar = true
			param.Name = p.expectKind(pytoken.KindName).Text
		case p.accept(pytoken.KindOp, "*"):
			param.Star = true
			if p.atKind(pytoken.KindName) {
				param.Name = p.next().Text
			}
		case p.accept(pytoken.KindOp, "/"):
			// positional-only marker; record as a bare slash param
			param.Name = "/"
		default:
			param.Name = p.expectKind(pytoken.KindName).Text
			if p.accept(pytoken.KindOp, ":") {
				param.Annotation = p.parseTest()
			}
			if p.accept(pytoken.KindOp, "=") {
				param.Default = p.parseTest()
			}
		}
		params = append(params, param)
		if !p.accept(pytoken.KindOp, ",") {
			break
		}
	}
	return params
}

func (p *parser) parseClassDef(decorators []Expr) Stmt {
	pos := p.expect(pytoken.KindKeyword, "class").Pos
	name := p.expectKind(pytoken.KindName).Text
	node := &ClassDef{Name: name, Decorators: decorators, Position: pos}
	if p.accept(pytoken.KindOp, "(") {
		for !p.at(pytoken.KindOp, ")") && !p.atKind(pytoken.KindEOF) {
			if p.atKind(pytoken.KindName) && p.toks[p.pos+1].Is(pytoken.KindOp, "=") {
				kw := Keyword{Name: p.next().Text}
				p.next() // =
				kw.Value = p.parseTest()
				node.Keywords = append(node.Keywords, kw)
			} else {
				node.Bases = append(node.Bases, p.parseTest())
			}
			if !p.accept(pytoken.KindOp, ",") {
				break
			}
		}
		p.expect(pytoken.KindOp, ")")
	}
	node.Body = p.parseSuite()
	return node
}

// parseSuite parses ":" followed by either inline simple statements or an
// indented block.
func (p *parser) parseSuite() []Stmt {
	p.expect(pytoken.KindOp, ":")
	if !p.atKind(pytoken.KindNewline) {
		return p.parseSimpleStatements()
	}
	p.next() // NEWLINE
	for p.atKind(pytoken.KindNL) {
		p.next()
	}
	if !p.atKind(pytoken.KindIndent) {
		p.errorf("expected an indented block")
	}
	p.next()
	var body []Stmt
	for !p.atKind(pytoken.KindDedent) && !p.atKind(pytoken.KindEOF) {
		if p.atKind(pytoken.KindNewline) || p.atKind(pytoken.KindNL) {
			p.next()
			continue
		}
		body = append(body, p.parseStatementRecover()...)
	}
	if p.atKind(pytoken.KindDedent) {
		p.next()
	}
	return body
}

// parseSimpleStatements parses one or more ';'-separated simple statements
// terminated by a NEWLINE and returns them in source order.
func (p *parser) parseSimpleStatements() []Stmt {
	stmts := []Stmt{p.parseSimpleStatement()}
	for p.accept(pytoken.KindOp, ";") {
		if p.atKind(pytoken.KindNewline) || p.atKind(pytoken.KindEOF) {
			break
		}
		stmts = append(stmts, p.parseSimpleStatement())
	}
	if p.atKind(pytoken.KindNewline) {
		p.next()
	} else if !p.atKind(pytoken.KindEOF) && !p.atKind(pytoken.KindDedent) {
		p.errorf("unexpected %s after statement", p.peek())
	}
	return stmts
}

func (p *parser) parseSimpleStatement() Stmt {
	t := p.peek()
	if t.Kind == pytoken.KindKeyword {
		switch t.Text {
		case "import":
			return p.parseImport()
		case "from":
			return p.parseImportFrom()
		case "return":
			pos := p.next().Pos
			node := &Return{Position: pos}
			if !p.atKind(pytoken.KindNewline) && !p.at(pytoken.KindOp, ";") && !p.atKind(pytoken.KindEOF) && !p.atKind(pytoken.KindDedent) {
				node.Value = p.parseTestList()
			}
			return node
		case "raise":
			pos := p.next().Pos
			node := &Raise{Position: pos}
			if !p.atKind(pytoken.KindNewline) && !p.at(pytoken.KindOp, ";") && !p.atKind(pytoken.KindEOF) {
				node.Exc = p.parseTest()
				if p.accept(pytoken.KindKeyword, "from") {
					node.Cause = p.parseTest()
				}
			}
			return node
		case "assert":
			pos := p.next().Pos
			node := &Assert{Position: pos, Test: p.parseTest()}
			if p.accept(pytoken.KindOp, ",") {
				node.Msg = p.parseTest()
			}
			return node
		case "pass":
			return &Pass{Position: p.next().Pos}
		case "break":
			return &Break{Position: p.next().Pos}
		case "continue":
			return &Continue{Position: p.next().Pos}
		case "global":
			pos := p.next().Pos
			return &Global{Position: pos, Names: p.parseNameList()}
		case "nonlocal":
			pos := p.next().Pos
			return &Nonlocal{Position: pos, Names: p.parseNameList()}
		case "del":
			pos := p.next().Pos
			node := &Del{Position: pos}
			node.Targets = append(node.Targets, p.parseTarget())
			for p.accept(pytoken.KindOp, ",") {
				node.Targets = append(node.Targets, p.parseTarget())
			}
			return node
		case "yield":
			pos := t.Pos
			return &ExprStmt{Position: pos, Value: p.parseYield()}
		}
	}
	return p.parseExprStatement()
}

func (p *parser) parseNameList() []string {
	names := []string{p.expectKind(pytoken.KindName).Text}
	for p.accept(pytoken.KindOp, ",") {
		names = append(names, p.expectKind(pytoken.KindName).Text)
	}
	return names
}

func (p *parser) parseImport() Stmt {
	pos := p.expect(pytoken.KindKeyword, "import").Pos
	node := &Import{Position: pos}
	for {
		alias := Alias{Name: p.parseDottedName()}
		if p.accept(pytoken.KindKeyword, "as") {
			alias.AsName = p.expectKind(pytoken.KindName).Text
		}
		node.Names = append(node.Names, alias)
		if !p.accept(pytoken.KindOp, ",") {
			break
		}
	}
	return node
}

func (p *parser) parseImportFrom() Stmt {
	pos := p.expect(pytoken.KindKeyword, "from").Pos
	node := &ImportFrom{Position: pos}
	for p.at(pytoken.KindOp, ".") || p.at(pytoken.KindOp, "...") {
		node.Level += len(p.next().Text)
	}
	if p.atKind(pytoken.KindName) {
		node.Module = p.parseDottedName()
	}
	p.expect(pytoken.KindKeyword, "import")
	if p.accept(pytoken.KindOp, "*") {
		node.Star = true
		return node
	}
	paren := p.accept(pytoken.KindOp, "(")
	for {
		alias := Alias{Name: p.expectKind(pytoken.KindName).Text}
		if p.accept(pytoken.KindKeyword, "as") {
			alias.AsName = p.expectKind(pytoken.KindName).Text
		}
		node.Names = append(node.Names, alias)
		if !p.accept(pytoken.KindOp, ",") {
			break
		}
		if paren && p.at(pytoken.KindOp, ")") {
			break
		}
	}
	if paren {
		p.expect(pytoken.KindOp, ")")
	}
	return node
}

func (p *parser) parseDottedName() string {
	var b strings.Builder
	b.WriteString(p.expectKind(pytoken.KindName).Text)
	for p.at(pytoken.KindOp, ".") {
		p.next()
		b.WriteByte('.')
		b.WriteString(p.expectKind(pytoken.KindName).Text)
	}
	return b.String()
}

var augOps = map[string]bool{
	"+=": true, "-=": true, "*=": true, "/=": true, "//=": true, "%=": true,
	"**=": true, ">>=": true, "<<=": true, "&=": true, "|=": true, "^=": true,
	"@=": true,
}

func (p *parser) parseExprStatement() Stmt {
	pos := p.peek().Pos
	first := p.parseTestListStar()

	t := p.peek()
	if t.Kind == pytoken.KindOp && augOps[t.Text] {
		op := p.next().Text
		var value Expr
		if p.at(pytoken.KindKeyword, "yield") {
			value = p.parseYield()
		} else {
			value = p.parseTestList()
		}
		return &AugAssign{Target: first, Op: op, Value: value, Position: pos}
	}

	if p.at(pytoken.KindOp, ":") {
		p.next()
		ann := p.parseTest()
		node := &AnnAssign{Target: first, Annotation: ann, Position: pos}
		if p.accept(pytoken.KindOp, "=") {
			node.Value = p.parseTestList()
		}
		return node
	}

	if p.at(pytoken.KindOp, "=") {
		targets := []Expr{first}
		var value Expr
		for p.accept(pytoken.KindOp, "=") {
			if p.at(pytoken.KindKeyword, "yield") {
				value = p.parseYield()
				break
			}
			value = p.parseTestListStar()
			if p.at(pytoken.KindOp, "=") {
				targets = append(targets, value)
			}
		}
		return &Assign{Targets: targets, Value: value, Position: pos}
	}

	return &ExprStmt{Value: first, Position: pos}
}

func (p *parser) parseYield() Expr {
	pos := p.expect(pytoken.KindKeyword, "yield").Pos
	node := &Yield{Position: pos}
	if p.accept(pytoken.KindKeyword, "from") {
		node.From = true
		node.Value = p.parseTest()
		return node
	}
	if !p.atKind(pytoken.KindNewline) && !p.at(pytoken.KindOp, ")") && !p.at(pytoken.KindOp, ";") && !p.atKind(pytoken.KindEOF) {
		node.Value = p.parseTestList()
	}
	return node
}

// parseTargetList parses assignment/for targets: a, (b, c), d[0], e.attr.
func (p *parser) parseTargetList() Expr {
	pos := p.peek().Pos
	first := p.parseTarget()
	if !p.at(pytoken.KindOp, ",") {
		return first
	}
	elts := []Expr{first}
	for p.accept(pytoken.KindOp, ",") {
		if p.at(pytoken.KindKeyword, "in") || p.at(pytoken.KindOp, "=") || p.atKind(pytoken.KindNewline) {
			break
		}
		elts = append(elts, p.parseTarget())
	}
	return &Tuple{Elts: elts, Position: pos}
}

func (p *parser) parseTarget() Expr {
	if p.at(pytoken.KindOp, "*") {
		pos := p.next().Pos
		return &Starred{Value: p.parseTarget(), Position: pos}
	}
	return p.parsePrimary()
}

// parseTestListStar parses "test (',' test)* [',']" building a Tuple when a
// comma occurs (the common "a, b = f()" pattern).
func (p *parser) parseTestListStar() Expr {
	pos := p.peek().Pos
	first := p.parseStarOrTest()
	if !p.at(pytoken.KindOp, ",") {
		return first
	}
	elts := []Expr{first}
	for p.accept(pytoken.KindOp, ",") {
		if p.atEndOfTestList() {
			break
		}
		elts = append(elts, p.parseStarOrTest())
	}
	return &Tuple{Elts: elts, Position: pos}
}

func (p *parser) atEndOfTestList() bool {
	t := p.peek()
	if t.Kind == pytoken.KindNewline || t.Kind == pytoken.KindEOF || t.Kind == pytoken.KindDedent {
		return true
	}
	if t.Kind == pytoken.KindOp {
		switch t.Text {
		case "=", ")", "]", "}", ":", ";":
			return true
		}
	}
	return false
}

func (p *parser) parseStarOrTest() Expr {
	if p.at(pytoken.KindOp, "*") {
		pos := p.next().Pos
		return &Starred{Value: p.parseTest(), Position: pos}
	}
	return p.parseNamedTest()
}

func (p *parser) parseTestList() Expr { return p.parseTestListStar() }

// parseNamedTest allows the walrus operator at the top of a condition.
func (p *parser) parseNamedTest() Expr {
	e := p.parseTest()
	if p.at(pytoken.KindOp, ":=") {
		pos := p.next().Pos
		right := p.parseTest()
		return &BinOp{Left: e, Op: ":=", Right: right, Position: pos}
	}
	return e
}

func (p *parser) parseTest() Expr {
	if p.at(pytoken.KindKeyword, "lambda") {
		return p.parseLambda()
	}
	cond := p.parseOrTest()
	if p.at(pytoken.KindKeyword, "if") {
		pos := p.next().Pos
		test := p.parseOrTest()
		p.expect(pytoken.KindKeyword, "else")
		orelse := p.parseTest()
		return &IfExp{Cond: test, Body: cond, Orelse: orelse, Position: pos}
	}
	return cond
}

func (p *parser) parseLambda() Expr {
	pos := p.expect(pytoken.KindKeyword, "lambda").Pos
	var params []Param
	if !p.at(pytoken.KindOp, ":") {
		params = p.parseLambdaParams()
	}
	p.expect(pytoken.KindOp, ":")
	return &Lambda{Params: params, Body: p.parseTest(), Position: pos}
}

func (p *parser) parseLambdaParams() []Param {
	var params []Param
	for {
		var param Param
		switch {
		case p.accept(pytoken.KindOp, "**"):
			param.DoubleStar = true
			param.Name = p.expectKind(pytoken.KindName).Text
		case p.accept(pytoken.KindOp, "*"):
			param.Star = true
			if p.atKind(pytoken.KindName) {
				param.Name = p.next().Text
			}
		default:
			param.Name = p.expectKind(pytoken.KindName).Text
			if p.accept(pytoken.KindOp, "=") {
				param.Default = p.parseTest()
			}
		}
		params = append(params, param)
		if !p.accept(pytoken.KindOp, ",") {
			return params
		}
		if p.at(pytoken.KindOp, ":") {
			return params
		}
	}
}

func (p *parser) parseOrTest() Expr {
	left := p.parseAndTest()
	if !p.at(pytoken.KindKeyword, "or") {
		return left
	}
	node := &BoolOp{Op: "or", Values: []Expr{left}, Position: left.Pos()}
	for p.accept(pytoken.KindKeyword, "or") {
		node.Values = append(node.Values, p.parseAndTest())
	}
	return node
}

func (p *parser) parseAndTest() Expr {
	left := p.parseNotTest()
	if !p.at(pytoken.KindKeyword, "and") {
		return left
	}
	node := &BoolOp{Op: "and", Values: []Expr{left}, Position: left.Pos()}
	for p.accept(pytoken.KindKeyword, "and") {
		node.Values = append(node.Values, p.parseNotTest())
	}
	return node
}

func (p *parser) parseNotTest() Expr {
	if p.at(pytoken.KindKeyword, "not") {
		pos := p.next().Pos
		return &UnaryOp{Op: "not", Operand: p.parseNotTest(), Position: pos}
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() Expr {
	left := p.parseBitOr()
	var ops []string
	var comps []Expr
	for {
		t := p.peek()
		var op string
		switch {
		case t.Kind == pytoken.KindOp && (t.Text == "<" || t.Text == ">" || t.Text == "==" || t.Text == ">=" || t.Text == "<=" || t.Text == "!="):
			op = p.next().Text
		case t.Is(pytoken.KindKeyword, "in"):
			p.next()
			op = "in"
		case t.Is(pytoken.KindKeyword, "not") && p.toks[p.pos+1].Is(pytoken.KindKeyword, "in"):
			p.next()
			p.next()
			op = "not in"
		case t.Is(pytoken.KindKeyword, "is"):
			p.next()
			op = "is"
			if p.accept(pytoken.KindKeyword, "not") {
				op = "is not"
			}
		default:
			if len(ops) == 0 {
				return left
			}
			return &Compare{Left: left, Ops: ops, Comparators: comps, Position: left.Pos()}
		}
		ops = append(ops, op)
		comps = append(comps, p.parseBitOr())
	}
}

func (p *parser) parseBinOpLevel(ops []string, sub func() Expr) Expr {
	left := sub()
	for {
		t := p.peek()
		matched := ""
		if t.Kind == pytoken.KindOp {
			for _, op := range ops {
				if t.Text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return left
		}
		pos := p.next().Pos
		right := sub()
		left = &BinOp{Left: left, Op: matched, Right: right, Position: pos}
	}
}

func (p *parser) parseBitOr() Expr {
	return p.parseBinOpLevel([]string{"|"}, p.parseBitXor)
}

func (p *parser) parseBitXor() Expr {
	return p.parseBinOpLevel([]string{"^"}, p.parseBitAnd)
}

func (p *parser) parseBitAnd() Expr {
	return p.parseBinOpLevel([]string{"&"}, p.parseShift)
}

func (p *parser) parseShift() Expr {
	return p.parseBinOpLevel([]string{"<<", ">>"}, p.parseArith)
}

func (p *parser) parseArith() Expr {
	return p.parseBinOpLevel([]string{"+", "-"}, p.parseTerm)
}

func (p *parser) parseTerm() Expr {
	return p.parseBinOpLevel([]string{"*", "/", "//", "%", "@"}, p.parseFactor)
}

func (p *parser) parseFactor() Expr {
	t := p.peek()
	if t.Kind == pytoken.KindOp && (t.Text == "+" || t.Text == "-" || t.Text == "~") {
		pos := p.next().Pos
		return &UnaryOp{Op: t.Text, Operand: p.parseFactor(), Position: pos}
	}
	return p.parsePower()
}

func (p *parser) parsePower() Expr {
	base := p.parseAwaitPrimary()
	if p.at(pytoken.KindOp, "**") {
		pos := p.next().Pos
		return &BinOp{Left: base, Op: "**", Right: p.parseFactor(), Position: pos}
	}
	return base
}

func (p *parser) parseAwaitPrimary() Expr {
	if p.at(pytoken.KindKeyword, "await") {
		pos := p.next().Pos
		return &Await{Value: p.parseAwaitPrimary(), Position: pos}
	}
	return p.parsePrimary()
}

// parsePrimary parses an atom followed by call/subscript/attribute trailers.
func (p *parser) parsePrimary() Expr {
	e := p.parseAtom()
	for {
		switch {
		case p.at(pytoken.KindOp, "("):
			pos := p.next().Pos
			call := &Call{Func: e, Position: pos}
			p.parseCallArgs(call)
			p.expect(pytoken.KindOp, ")")
			e = call
		case p.at(pytoken.KindOp, "["):
			pos := p.next().Pos
			idx := p.parseSubscriptIndex()
			p.expect(pytoken.KindOp, "]")
			e = &Subscript{Value: e, Index: idx, Position: pos}
		case p.at(pytoken.KindOp, "."):
			pos := p.next().Pos
			attr := p.expectKind(pytoken.KindName).Text
			e = &Attribute{Value: e, Attr: attr, Position: pos}
		default:
			return e
		}
	}
}

func (p *parser) parseCallArgs(call *Call) {
	for !p.at(pytoken.KindOp, ")") && !p.atKind(pytoken.KindEOF) {
		switch {
		case p.accept(pytoken.KindOp, "**"):
			call.Keywords = append(call.Keywords, Keyword{Value: p.parseTest()})
		case p.at(pytoken.KindOp, "*"):
			pos := p.next().Pos
			call.Args = append(call.Args, &Starred{Value: p.parseTest(), Position: pos})
		case p.atKind(pytoken.KindName) && p.toks[p.pos+1].Is(pytoken.KindOp, "="):
			kw := Keyword{Name: p.next().Text}
			p.next() // =
			kw.Value = p.parseTest()
			call.Keywords = append(call.Keywords, kw)
		default:
			arg := p.parseTest()
			// generator expression argument: f(x for x in xs)
			if p.at(pytoken.KindKeyword, "for") || (p.at(pytoken.KindKeyword, "async") && p.toks[p.pos+1].Is(pytoken.KindKeyword, "for")) {
				arg = p.parseCompTail("generator", arg, nil, arg.Pos())
			}
			if p.at(pytoken.KindOp, ":=") {
				pos := p.next().Pos
				arg = &BinOp{Left: arg, Op: ":=", Right: p.parseTest(), Position: pos}
			}
			call.Args = append(call.Args, arg)
		}
		if !p.accept(pytoken.KindOp, ",") {
			return
		}
	}
}

func (p *parser) parseSubscriptIndex() Expr {
	pos := p.peek().Pos
	parseItem := func() Expr {
		var lower Expr
		if !p.at(pytoken.KindOp, ":") {
			lower = p.parseTest()
			if p.at(pytoken.KindOp, ":=") {
				wpos := p.next().Pos
				lower = &BinOp{Left: lower, Op: ":=", Right: p.parseTest(), Position: wpos}
			}
		}
		if !p.at(pytoken.KindOp, ":") {
			return lower
		}
		sl := &Slice{Lower: lower, Position: pos}
		p.next()
		if !p.at(pytoken.KindOp, ":") && !p.at(pytoken.KindOp, "]") && !p.at(pytoken.KindOp, ",") {
			sl.Upper = p.parseTest()
		}
		if p.accept(pytoken.KindOp, ":") {
			if !p.at(pytoken.KindOp, "]") && !p.at(pytoken.KindOp, ",") {
				sl.Step = p.parseTest()
			}
		}
		return sl
	}
	first := parseItem()
	if !p.at(pytoken.KindOp, ",") {
		return first
	}
	elts := []Expr{first}
	for p.accept(pytoken.KindOp, ",") {
		if p.at(pytoken.KindOp, "]") {
			break
		}
		elts = append(elts, parseItem())
	}
	return &Tuple{Elts: elts, Position: pos}
}

func (p *parser) parseAtom() Expr {
	t := p.peek()
	switch t.Kind {
	case pytoken.KindName:
		p.next()
		return &Name{ID: t.Text, Position: t.Pos}
	case pytoken.KindNumber:
		p.next()
		return &NumberLit{Text: t.Text, Position: t.Pos}
	case pytoken.KindString:
		return p.parseStringAtom()
	case pytoken.KindKeyword:
		switch t.Text {
		case "True", "False", "None":
			p.next()
			return &ConstLit{Kind: t.Text, Position: t.Pos}
		case "lambda":
			return p.parseLambda()
		case "not":
			return p.parseNotTest()
		case "yield":
			return p.parseYield()
		case "await":
			return p.parseAwaitPrimary()
		}
	case pytoken.KindOp:
		switch t.Text {
		case "(":
			return p.parseParenAtom()
		case "[":
			return p.parseListAtom()
		case "{":
			return p.parseDictSetAtom()
		case "...":
			p.next()
			return &ConstLit{Kind: "...", Position: t.Pos}
		}
	}
	p.errorf("unexpected %s in expression", t)
	return nil
}

func (p *parser) parseStringAtom() Expr {
	first := p.next()
	raw := first.Text
	fstr := isFStringText(first.Text)
	for p.atKind(pytoken.KindString) { // implicit concatenation
		seg := p.next()
		raw += seg.Text
		fstr = fstr || isFStringText(seg.Text)
	}
	return &StringLit{
		Raw:      raw,
		Value:    Unquote(first.Text),
		FString:  fstr,
		Position: first.Pos,
	}
}

func isFStringText(s string) bool {
	for i := 0; i < len(s) && i < 2; i++ {
		if s[i] == 'f' || s[i] == 'F' {
			return true
		}
		if s[i] == '\'' || s[i] == '"' {
			return false
		}
	}
	return false
}

// Unquote strips the prefix and quotes from a string literal token and
// resolves common escapes. Best-effort: unknown escapes are kept verbatim.
func Unquote(tok string) string {
	i := 0
	raw := false
	for i < len(tok) && tok[i] != '\'' && tok[i] != '"' {
		if tok[i] == 'r' || tok[i] == 'R' {
			raw = true
		}
		i++
	}
	if i >= len(tok) {
		return tok
	}
	quote := tok[i]
	body := tok[i:]
	switch {
	case len(body) >= 6 && body[1] == quote && body[2] == quote:
		body = body[3 : len(body)-3]
	case len(body) >= 2:
		body = body[1 : len(body)-1]
	}
	if raw || !strings.ContainsRune(body, '\\') {
		return body
	}
	var b strings.Builder
	for j := 0; j < len(body); j++ {
		if body[j] != '\\' || j+1 >= len(body) {
			b.WriteByte(body[j])
			continue
		}
		j++
		switch body[j] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '\\', '\'', '"':
			b.WriteByte(body[j])
		case '0':
			b.WriteByte(0)
		default:
			b.WriteByte('\\')
			b.WriteByte(body[j])
		}
	}
	return b.String()
}

func (p *parser) parseParenAtom() Expr {
	pos := p.expect(pytoken.KindOp, "(").Pos
	if p.accept(pytoken.KindOp, ")") {
		return &Tuple{Position: pos}
	}
	if p.at(pytoken.KindKeyword, "yield") {
		e := p.parseYield()
		p.expect(pytoken.KindOp, ")")
		return e
	}
	first := p.parseStarOrTest()
	if p.at(pytoken.KindKeyword, "for") || (p.at(pytoken.KindKeyword, "async") && p.toks[p.pos+1].Is(pytoken.KindKeyword, "for")) {
		comp := p.parseCompTail("generator", first, nil, pos)
		p.expect(pytoken.KindOp, ")")
		return comp
	}
	if p.at(pytoken.KindOp, ",") {
		elts := []Expr{first}
		for p.accept(pytoken.KindOp, ",") {
			if p.at(pytoken.KindOp, ")") {
				break
			}
			elts = append(elts, p.parseStarOrTest())
		}
		p.expect(pytoken.KindOp, ")")
		return &Tuple{Elts: elts, Position: pos}
	}
	p.expect(pytoken.KindOp, ")")
	return first
}

func (p *parser) parseListAtom() Expr {
	pos := p.expect(pytoken.KindOp, "[").Pos
	if p.accept(pytoken.KindOp, "]") {
		return &List{Position: pos}
	}
	first := p.parseStarOrTest()
	if p.at(pytoken.KindKeyword, "for") || (p.at(pytoken.KindKeyword, "async") && p.toks[p.pos+1].Is(pytoken.KindKeyword, "for")) {
		comp := p.parseCompTail("list", first, nil, pos)
		p.expect(pytoken.KindOp, "]")
		return comp
	}
	elts := []Expr{first}
	for p.accept(pytoken.KindOp, ",") {
		if p.at(pytoken.KindOp, "]") {
			break
		}
		elts = append(elts, p.parseStarOrTest())
	}
	p.expect(pytoken.KindOp, "]")
	return &List{Elts: elts, Position: pos}
}

func (p *parser) parseDictSetAtom() Expr {
	pos := p.expect(pytoken.KindOp, "{").Pos
	if p.accept(pytoken.KindOp, "}") {
		return &Dict{Position: pos}
	}
	// **expansion means dict
	if p.accept(pytoken.KindOp, "**") {
		d := &Dict{Position: pos}
		d.Keys = append(d.Keys, nil)
		d.Values = append(d.Values, p.parseTest())
		for p.accept(pytoken.KindOp, ",") {
			if p.at(pytoken.KindOp, "}") {
				break
			}
			p.parseDictEntry(d)
		}
		p.expect(pytoken.KindOp, "}")
		return d
	}
	first := p.parseNamedTest()
	if p.at(pytoken.KindOp, ":") {
		p.next()
		value := p.parseTest()
		if p.at(pytoken.KindKeyword, "for") {
			comp := p.parseCompTail("dict", first, value, pos)
			p.expect(pytoken.KindOp, "}")
			return comp
		}
		d := &Dict{Position: pos}
		d.Keys = append(d.Keys, first)
		d.Values = append(d.Values, value)
		for p.accept(pytoken.KindOp, ",") {
			if p.at(pytoken.KindOp, "}") {
				break
			}
			p.parseDictEntry(d)
		}
		p.expect(pytoken.KindOp, "}")
		return d
	}
	if p.at(pytoken.KindKeyword, "for") {
		comp := p.parseCompTail("set", first, nil, pos)
		p.expect(pytoken.KindOp, "}")
		return comp
	}
	s := &Set{Elts: []Expr{first}, Position: pos}
	for p.accept(pytoken.KindOp, ",") {
		if p.at(pytoken.KindOp, "}") {
			break
		}
		s.Elts = append(s.Elts, p.parseNamedTest())
	}
	p.expect(pytoken.KindOp, "}")
	return s
}

func (p *parser) parseDictEntry(d *Dict) {
	if p.accept(pytoken.KindOp, "**") {
		d.Keys = append(d.Keys, nil)
		d.Values = append(d.Values, p.parseTest())
		return
	}
	k := p.parseTest()
	p.expect(pytoken.KindOp, ":")
	v := p.parseTest()
	d.Keys = append(d.Keys, k)
	d.Values = append(d.Values, v)
}

func (p *parser) parseCompTail(kind string, elt, value Expr, pos pytoken.Position) Expr {
	comp := &Comp{Kind: kind, Elt: elt, Value: value, Position: pos}
	for {
		if p.at(pytoken.KindKeyword, "async") && p.toks[p.pos+1].Is(pytoken.KindKeyword, "for") {
			p.next()
		}
		if !p.accept(pytoken.KindKeyword, "for") {
			break
		}
		gen := CompFor{Target: p.parseTargetList()}
		p.expect(pytoken.KindKeyword, "in")
		gen.Iter = p.parseOrTest()
		for p.at(pytoken.KindKeyword, "if") {
			p.next()
			gen.Ifs = append(gen.Ifs, p.parseOrTest())
		}
		comp.Generators = append(comp.Generators, gen)
	}
	return comp
}

package pyast

// Walk traverses the tree rooted at node in depth-first order, calling fn
// for each node. If fn returns false for a node, its children are skipped.
func Walk(node Node, fn func(Node) bool) {
	if node == nil {
		return
	}
	if !fn(node) {
		return
	}
	switch n := node.(type) {
	case *Module:
		walkStmts(n.Body, fn)
	case *FunctionDef:
		for _, d := range n.Decorators {
			Walk(d, fn)
		}
		walkParams(n.Params, fn)
		Walk(n.Returns, fn)
		walkStmts(n.Body, fn)
	case *ClassDef:
		for _, d := range n.Decorators {
			Walk(d, fn)
		}
		walkExprs(n.Bases, fn)
		for _, k := range n.Keywords {
			Walk(k.Value, fn)
		}
		walkStmts(n.Body, fn)
	case *If:
		Walk(n.Cond, fn)
		walkStmts(n.Body, fn)
		walkStmts(n.Orelse, fn)
	case *For:
		Walk(n.Target, fn)
		Walk(n.Iter, fn)
		walkStmts(n.Body, fn)
		walkStmts(n.Orelse, fn)
	case *While:
		Walk(n.Cond, fn)
		walkStmts(n.Body, fn)
		walkStmts(n.Orelse, fn)
	case *Try:
		walkStmts(n.Body, fn)
		for _, h := range n.Handlers {
			Walk(h.Type, fn)
			walkStmts(h.Body, fn)
		}
		walkStmts(n.Orelse, fn)
		walkStmts(n.Finally, fn)
	case *With:
		for _, it := range n.Items {
			Walk(it.Context, fn)
			Walk(it.Target, fn)
		}
		walkStmts(n.Body, fn)
	case *Return:
		Walk(n.Value, fn)
	case *Raise:
		Walk(n.Exc, fn)
		Walk(n.Cause, fn)
	case *Assert:
		Walk(n.Test, fn)
		Walk(n.Msg, fn)
	case *Assign:
		walkExprs(n.Targets, fn)
		Walk(n.Value, fn)
	case *AugAssign:
		Walk(n.Target, fn)
		Walk(n.Value, fn)
	case *AnnAssign:
		Walk(n.Target, fn)
		Walk(n.Annotation, fn)
		Walk(n.Value, fn)
	case *ExprStmt:
		Walk(n.Value, fn)
	case *Del:
		walkExprs(n.Targets, fn)
	case *Tuple:
		walkExprs(n.Elts, fn)
	case *List:
		walkExprs(n.Elts, fn)
	case *Set:
		walkExprs(n.Elts, fn)
	case *Dict:
		for i := range n.Keys {
			Walk(n.Keys[i], fn)
			Walk(n.Values[i], fn)
		}
	case *Call:
		Walk(n.Func, fn)
		walkExprs(n.Args, fn)
		for _, k := range n.Keywords {
			Walk(k.Value, fn)
		}
	case *Attribute:
		Walk(n.Value, fn)
	case *Subscript:
		Walk(n.Value, fn)
		Walk(n.Index, fn)
	case *Slice:
		Walk(n.Lower, fn)
		Walk(n.Upper, fn)
		Walk(n.Step, fn)
	case *BinOp:
		Walk(n.Left, fn)
		Walk(n.Right, fn)
	case *BoolOp:
		walkExprs(n.Values, fn)
	case *UnaryOp:
		Walk(n.Operand, fn)
	case *Compare:
		Walk(n.Left, fn)
		walkExprs(n.Comparators, fn)
	case *IfExp:
		Walk(n.Cond, fn)
		Walk(n.Body, fn)
		Walk(n.Orelse, fn)
	case *Lambda:
		walkParams(n.Params, fn)
		Walk(n.Body, fn)
	case *Starred:
		Walk(n.Value, fn)
	case *Await:
		Walk(n.Value, fn)
	case *Yield:
		Walk(n.Value, fn)
	case *Comp:
		Walk(n.Elt, fn)
		Walk(n.Value, fn)
		for _, g := range n.Generators {
			Walk(g.Target, fn)
			Walk(g.Iter, fn)
			walkExprs(g.Ifs, fn)
		}
	}
}

func walkStmts(stmts []Stmt, fn func(Node) bool) {
	for _, s := range stmts {
		Walk(s, fn)
	}
}

func walkExprs(exprs []Expr, fn func(Node) bool) {
	for _, e := range exprs {
		Walk(e, fn)
	}
}

func walkParams(params []Param, fn func(Node) bool) {
	for _, p := range params {
		Walk(p.Default, fn)
		Walk(p.Annotation, fn)
	}
}

// Calls returns every Call node in the tree, in source order.
func Calls(node Node) []*Call {
	var out []*Call
	Walk(node, func(n Node) bool {
		if c, ok := n.(*Call); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Functions returns every FunctionDef in the tree, in source order.
func Functions(node Node) []*FunctionDef {
	var out []*FunctionDef
	Walk(node, func(n Node) bool {
		if f, ok := n.(*FunctionDef); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}

// DottedName renders an expression made of names and attributes as a
// dotted path ("os.path.join"). It returns "" when the expression contains
// anything else.
func DottedName(e Expr) string {
	switch n := e.(type) {
	case *Name:
		return n.ID
	case *Attribute:
		base := DottedName(n.Value)
		if base == "" {
			return ""
		}
		return base + "." + n.Attr
	}
	return ""
}

// CallName returns the dotted name of a call's function, or "" if the
// callee is not a plain dotted path.
func CallName(c *Call) string { return DottedName(c.Func) }

// KeywordArg returns the value of the named keyword argument, or nil.
func KeywordArg(c *Call, name string) Expr {
	for _, k := range c.Keywords {
		if k.Name == name {
			return k.Value
		}
	}
	return nil
}

// IsConst reports whether e is the constant kind ("True", "False", "None").
func IsConst(e Expr, kind string) bool {
	c, ok := e.(*ConstLit)
	return ok && c.Kind == kind
}

// ImportedModules returns the set of top-level module names imported by
// the module, including "from X import ..." roots.
func ImportedModules(m *Module) map[string]bool {
	out := make(map[string]bool)
	Walk(m, func(n Node) bool {
		switch s := n.(type) {
		case *Import:
			for _, a := range s.Names {
				out[rootModule(a.Name)] = true
			}
		case *ImportFrom:
			if s.Module != "" {
				out[rootModule(s.Module)] = true
			}
		}
		return true
	})
	return out
}

func rootModule(dotted string) string {
	for i := 0; i < len(dotted); i++ {
		if dotted[i] == '.' {
			return dotted[:i]
		}
	}
	return dotted
}

package pyast

import (
	"strings"
)

// Unparse renders the tree back to Python source with normalized
// formatting (4-space indents, single spaces around binary operators).
// The output parses back to a structurally equivalent tree — a property
// the tests verify — which makes it the foundation for AST-level code
// transformations.
func Unparse(m *Module) string {
	var u unparser
	u.stmts(m.Body, 0)
	return u.b.String()
}

// UnparseStmt renders a single statement at the given indent level.
func UnparseStmt(s Stmt, indent int) string {
	var u unparser
	u.stmt(s, indent)
	return u.b.String()
}

// UnparseExpr renders a single expression.
func UnparseExpr(e Expr) string {
	var u unparser
	u.expr(e)
	return u.b.String()
}

type unparser struct {
	b strings.Builder
}

func (u *unparser) indent(level int) {
	for i := 0; i < level; i++ {
		u.b.WriteString("    ")
	}
}

func (u *unparser) line(level int, parts ...string) {
	u.indent(level)
	for _, p := range parts {
		u.b.WriteString(p)
	}
	u.b.WriteByte('\n')
}

func (u *unparser) stmts(body []Stmt, level int) {
	if len(body) == 0 {
		u.line(level, "pass")
		return
	}
	for _, s := range body {
		u.stmt(s, level)
	}
}

func (u *unparser) stmt(s Stmt, level int) {
	switch n := s.(type) {
	case *Import:
		u.indent(level)
		u.b.WriteString("import ")
		for i, a := range n.Names {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.b.WriteString(a.Name)
			if a.AsName != "" {
				u.b.WriteString(" as " + a.AsName)
			}
		}
		u.b.WriteByte('\n')
	case *ImportFrom:
		u.indent(level)
		u.b.WriteString("from " + strings.Repeat(".", n.Level) + n.Module + " import ")
		if n.Star {
			u.b.WriteString("*")
		} else {
			for i, a := range n.Names {
				if i > 0 {
					u.b.WriteString(", ")
				}
				u.b.WriteString(a.Name)
				if a.AsName != "" {
					u.b.WriteString(" as " + a.AsName)
				}
			}
		}
		u.b.WriteByte('\n')
	case *FunctionDef:
		for _, d := range n.Decorators {
			u.line(level, "@", UnparseExpr(d))
		}
		u.indent(level)
		if n.Async {
			u.b.WriteString("async ")
		}
		u.b.WriteString("def " + n.Name + "(")
		u.params(n.Params)
		u.b.WriteString(")")
		if n.Returns != nil {
			u.b.WriteString(" -> " + UnparseExpr(n.Returns))
		}
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
	case *ClassDef:
		for _, d := range n.Decorators {
			u.line(level, "@", UnparseExpr(d))
		}
		u.indent(level)
		u.b.WriteString("class " + n.Name)
		if len(n.Bases) > 0 || len(n.Keywords) > 0 {
			u.b.WriteString("(")
			for i, base := range n.Bases {
				if i > 0 {
					u.b.WriteString(", ")
				}
				u.expr(base)
			}
			for i, kw := range n.Keywords {
				if i > 0 || len(n.Bases) > 0 {
					u.b.WriteString(", ")
				}
				u.b.WriteString(kw.Name + "=")
				u.expr(kw.Value)
			}
			u.b.WriteString(")")
		}
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
	case *If:
		u.indent(level)
		u.b.WriteString("if ")
		u.expr(n.Cond)
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
		if len(n.Orelse) > 0 {
			u.line(level, "else:")
			u.stmts(n.Orelse, level+1)
		}
	case *For:
		u.indent(level)
		if n.Async {
			u.b.WriteString("async ")
		}
		u.b.WriteString("for ")
		u.expr(n.Target)
		u.b.WriteString(" in ")
		u.expr(n.Iter)
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
		if len(n.Orelse) > 0 {
			u.line(level, "else:")
			u.stmts(n.Orelse, level+1)
		}
	case *While:
		u.indent(level)
		u.b.WriteString("while ")
		u.expr(n.Cond)
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
		if len(n.Orelse) > 0 {
			u.line(level, "else:")
			u.stmts(n.Orelse, level+1)
		}
	case *Try:
		u.line(level, "try:")
		u.stmts(n.Body, level+1)
		for _, h := range n.Handlers {
			u.indent(level)
			u.b.WriteString("except")
			if h.Type != nil {
				u.b.WriteString(" ")
				u.expr(h.Type)
				if h.Name != "" {
					u.b.WriteString(" as " + h.Name)
				}
			}
			u.b.WriteString(":\n")
			u.stmts(h.Body, level+1)
		}
		if len(n.Orelse) > 0 {
			u.line(level, "else:")
			u.stmts(n.Orelse, level+1)
		}
		if len(n.Finally) > 0 {
			u.line(level, "finally:")
			u.stmts(n.Finally, level+1)
		}
	case *With:
		u.indent(level)
		if n.Async {
			u.b.WriteString("async ")
		}
		u.b.WriteString("with ")
		for i, item := range n.Items {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(item.Context)
			if item.Target != nil {
				u.b.WriteString(" as ")
				u.expr(item.Target)
			}
		}
		u.b.WriteString(":\n")
		u.stmts(n.Body, level+1)
	case *Return:
		u.indent(level)
		u.b.WriteString("return")
		if n.Value != nil {
			u.b.WriteString(" ")
			u.expr(n.Value)
		}
		u.b.WriteByte('\n')
	case *Raise:
		u.indent(level)
		u.b.WriteString("raise")
		if n.Exc != nil {
			u.b.WriteString(" ")
			u.expr(n.Exc)
			if n.Cause != nil {
				u.b.WriteString(" from ")
				u.expr(n.Cause)
			}
		}
		u.b.WriteByte('\n')
	case *Assert:
		u.indent(level)
		u.b.WriteString("assert ")
		u.expr(n.Test)
		if n.Msg != nil {
			u.b.WriteString(", ")
			u.expr(n.Msg)
		}
		u.b.WriteByte('\n')
	case *Assign:
		u.indent(level)
		for _, t := range n.Targets {
			u.expr(t)
			u.b.WriteString(" = ")
		}
		u.expr(n.Value)
		u.b.WriteByte('\n')
	case *AugAssign:
		u.indent(level)
		u.expr(n.Target)
		u.b.WriteString(" " + n.Op + " ")
		u.expr(n.Value)
		u.b.WriteByte('\n')
	case *AnnAssign:
		u.indent(level)
		u.expr(n.Target)
		u.b.WriteString(": ")
		u.expr(n.Annotation)
		if n.Value != nil {
			u.b.WriteString(" = ")
			u.expr(n.Value)
		}
		u.b.WriteByte('\n')
	case *ExprStmt:
		u.indent(level)
		u.expr(n.Value)
		u.b.WriteByte('\n')
	case *Pass:
		u.line(level, "pass")
	case *Break:
		u.line(level, "break")
	case *Continue:
		u.line(level, "continue")
	case *Global:
		u.line(level, "global ", strings.Join(n.Names, ", "))
	case *Nonlocal:
		u.line(level, "nonlocal ", strings.Join(n.Names, ", "))
	case *Del:
		u.indent(level)
		u.b.WriteString("del ")
		for i, t := range n.Targets {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(t)
		}
		u.b.WriteByte('\n')
	case *BadStmt:
		u.line(level, "pass  # unparseable: ", strings.ReplaceAll(n.Source, "\n", " "))
	}
}

func (u *unparser) params(params []Param) {
	for i, p := range params {
		if i > 0 {
			u.b.WriteString(", ")
		}
		switch {
		case p.DoubleStar:
			u.b.WriteString("**" + p.Name)
		case p.Star:
			u.b.WriteString("*" + p.Name)
		default:
			u.b.WriteString(p.Name)
			if p.Annotation != nil {
				u.b.WriteString(": ")
				u.expr(p.Annotation)
			}
			if p.Default != nil {
				u.b.WriteString("=")
				u.expr(p.Default)
			}
		}
	}
}

func (u *unparser) expr(e Expr) {
	switch n := e.(type) {
	case nil:
		return
	case *Name:
		u.b.WriteString(n.ID)
	case *NumberLit:
		u.b.WriteString(n.Text)
	case *StringLit:
		u.b.WriteString(n.Raw)
	case *ConstLit:
		u.b.WriteString(n.Kind)
	case *Tuple:
		u.b.WriteString("(")
		for i, el := range n.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el)
		}
		if len(n.Elts) == 1 {
			u.b.WriteString(",")
		}
		u.b.WriteString(")")
	case *List:
		u.b.WriteString("[")
		for i, el := range n.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el)
		}
		u.b.WriteString("]")
	case *Set:
		u.b.WriteString("{")
		for i, el := range n.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el)
		}
		u.b.WriteString("}")
	case *Dict:
		u.b.WriteString("{")
		for i := range n.Keys {
			if i > 0 {
				u.b.WriteString(", ")
			}
			if n.Keys[i] == nil {
				u.b.WriteString("**")
				u.expr(n.Values[i])
				continue
			}
			u.expr(n.Keys[i])
			u.b.WriteString(": ")
			u.expr(n.Values[i])
		}
		u.b.WriteString("}")
	case *Call:
		u.exprParen(n.Func)
		u.b.WriteString("(")
		for i, a := range n.Args {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(a)
		}
		for i, kw := range n.Keywords {
			if i > 0 || len(n.Args) > 0 {
				u.b.WriteString(", ")
			}
			if kw.Name == "" {
				u.b.WriteString("**")
			} else {
				u.b.WriteString(kw.Name + "=")
			}
			u.expr(kw.Value)
		}
		u.b.WriteString(")")
	case *Attribute:
		u.exprParen(n.Value)
		u.b.WriteString("." + n.Attr)
	case *Subscript:
		u.exprParen(n.Value)
		u.b.WriteString("[")
		u.expr(n.Index)
		u.b.WriteString("]")
	case *Slice:
		if n.Lower != nil {
			u.expr(n.Lower)
		}
		u.b.WriteString(":")
		if n.Upper != nil {
			u.expr(n.Upper)
		}
		if n.Step != nil {
			u.b.WriteString(":")
			u.expr(n.Step)
		}
	case *BinOp:
		if n.Op == ":=" {
			u.b.WriteString("(")
			u.expr(n.Left)
			u.b.WriteString(" := ")
			u.expr(n.Right)
			u.b.WriteString(")")
			return
		}
		u.exprParen(n.Left)
		u.b.WriteString(" " + n.Op + " ")
		u.exprParen(n.Right)
	case *BoolOp:
		for i, v := range n.Values {
			if i > 0 {
				u.b.WriteString(" " + n.Op + " ")
			}
			u.exprParen(v)
		}
	case *UnaryOp:
		if n.Op == "not" {
			u.b.WriteString("not ")
		} else {
			u.b.WriteString(n.Op)
		}
		u.exprParen(n.Operand)
	case *Compare:
		u.exprParen(n.Left)
		for i, op := range n.Ops {
			u.b.WriteString(" " + op + " ")
			u.exprParen(n.Comparators[i])
		}
	case *IfExp:
		u.exprParen(n.Body)
		u.b.WriteString(" if ")
		u.exprParen(n.Cond)
		u.b.WriteString(" else ")
		u.exprParen(n.Orelse)
	case *Lambda:
		u.b.WriteString("lambda")
		if len(n.Params) > 0 {
			u.b.WriteString(" ")
			u.params(n.Params)
		}
		u.b.WriteString(": ")
		u.expr(n.Body)
	case *Starred:
		u.b.WriteString("*")
		u.expr(n.Value)
	case *Await:
		u.b.WriteString("await ")
		u.exprParen(n.Value)
	case *Yield:
		u.b.WriteString("(yield")
		if n.From {
			u.b.WriteString(" from")
		}
		if n.Value != nil {
			u.b.WriteString(" ")
			u.expr(n.Value)
		}
		u.b.WriteString(")")
	case *Comp:
		open, close := compDelims(n.Kind)
		u.b.WriteString(open)
		u.expr(n.Elt)
		if n.Kind == "dict" {
			u.b.WriteString(": ")
			u.expr(n.Value)
		}
		for _, g := range n.Generators {
			u.b.WriteString(" for ")
			u.expr(g.Target)
			u.b.WriteString(" in ")
			u.exprParen(g.Iter)
			for _, cond := range g.Ifs {
				u.b.WriteString(" if ")
				u.exprParen(cond)
			}
		}
		u.b.WriteString(close)
	case *BadExpr:
		u.b.WriteString("None")
	}
}

func compDelims(kind string) (string, string) {
	switch kind {
	case "list":
		return "[", "]"
	case "set", "dict":
		return "{", "}"
	default:
		return "(", ")"
	}
}

// exprParen renders e, wrapping compound expressions in parentheses so
// precedence is always preserved regardless of the original grouping.
func (u *unparser) exprParen(e Expr) {
	switch e.(type) {
	case *Name, *NumberLit, *StringLit, *ConstLit, *Call, *Attribute,
		*Subscript, *Tuple, *List, *Set, *Dict, *Comp:
		u.expr(e)
	default:
		u.b.WriteString("(")
		u.expr(e)
		u.b.WriteString(")")
	}
}

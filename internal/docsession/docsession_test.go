package docsession_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/docsession"
	"github.com/dessertlab/patchitpy/internal/editor"
	"github.com/dessertlab/patchitpy/internal/obs"
)

var uncached = detect.Options{NoCache: true}

const sample = "import os\nos.system(cmd)\nprint('ok')\n"

// fromScratch is the oracle: a plain scan of src on a fresh document.
func fromScratch(t *testing.T, d *detect.Detector, src string) []detect.Finding {
	t.Helper()
	return d.ScanPrepared(d.Prepare(src), uncached)
}

// sameFindings compares the fields a protocol client sees.
func sameFindings(got, want []detect.Finding) string {
	if len(got) != len(want) {
		return fmt.Sprintf("finding count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Rule != w.Rule || g.Start != w.Start || g.End != w.End || g.Line != w.Line || g.Snippet != w.Snippet {
			return fmt.Sprintf("finding %d: got %s@%d..%d line %d %q, want %s@%d..%d line %d %q",
				i, g.Rule.ID, g.Start, g.End, g.Line, g.Snippet, w.Rule.ID, w.Start, w.End, w.Line, w.Snippet)
		}
	}
	return ""
}

// spanEdit builds a TextEdit replacing src[start:end] in the *current*
// session text, mirroring how a client derives ranges from its buffer.
func spanEdit(src string, start, end int, repl string) editor.TextEdit {
	return editor.SpanEdit(src, start, end, repl)
}

func TestOpenEditClose(t *testing.T) {
	d := detect.New(nil)
	m := docsession.NewManager(d, 8)
	ctx := context.Background()

	res := m.Open(ctx, sample)
	if res.ID != "s1" {
		t.Fatalf("first session id = %q, want s1", res.ID)
	}
	if diff := sameFindings(res.Findings, fromScratch(t, d, sample)); diff != "" {
		t.Fatalf("open findings: %s", diff)
	}
	if len(res.Findings) == 0 {
		t.Fatal("sample should produce at least one finding")
	}
	gen0 := res.Gen

	// Append a second vulnerable line and expect the incremental result
	// to match a from-scratch scan of the edited text.
	edited := sample + "yaml.load(x)\n"
	res2, err := m.Edit(ctx, res.ID, []editor.TextEdit{
		spanEdit(sample, len(sample), len(sample), "yaml.load(x)\n"),
	})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if res2.Gen <= gen0 {
		t.Fatalf("generation did not advance: %d -> %d", gen0, res2.Gen)
	}
	if diff := sameFindings(res2.Findings, fromScratch(t, d, edited)); diff != "" {
		t.Fatalf("edit findings: %s", diff)
	}
	if res2.Stats.Full {
		t.Fatal("append edit should re-scan incrementally, not fall back to full")
	}

	if err := m.Close(res.ID); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Edit(ctx, res.ID, nil); err == nil {
		t.Fatal("Edit after Close should fail")
	}
	if err := m.Close(res.ID); err == nil {
		t.Fatal("double Close should fail")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after close, want 0", m.Len())
	}
}

func TestDeterministicIDs(t *testing.T) {
	m := docsession.NewManager(detect.New(nil), 8)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		res := m.Open(ctx, sample)
		if want := fmt.Sprintf("s%d", i); res.ID != want {
			t.Fatalf("session %d id = %q, want %q", i, res.ID, want)
		}
	}
	// IDs are never reused, even after a close frees a slot.
	if err := m.Close("s2"); err != nil {
		t.Fatal(err)
	}
	if res := m.Open(ctx, sample); res.ID != "s4" {
		t.Fatalf("post-close id = %q, want s4", res.ID)
	}
}

func TestSequentialEditSemantics(t *testing.T) {
	d := detect.New(nil)
	m := docsession.NewManager(d, 8)
	ctx := context.Background()

	res := m.Open(ctx, sample)
	// Two edits where the second's range is only meaningful against the
	// text produced by the first (LSP change-event ordering).
	cur := sample
	e1 := spanEdit(cur, 0, 0, "# header\n")
	cur = "# header\n" + cur
	idx := strings.Index(cur, "cmd")
	e2 := spanEdit(cur, idx, idx+len("cmd"), "user_input")
	cur = strings.Replace(cur, "cmd", "user_input", 1)

	res2, err := m.Edit(ctx, res.ID, []editor.TextEdit{e1, e2})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if diff := sameFindings(res2.Findings, fromScratch(t, d, cur)); diff != "" {
		t.Fatalf("sequential edits: %s", diff)
	}
}

func TestInvalidEditClosesSession(t *testing.T) {
	m := docsession.NewManager(detect.New(nil), 8)
	ctx := context.Background()
	res := m.Open(ctx, sample)
	bad := editor.TextEdit{Range: editor.Range{
		Start: editor.Position{Line: 1, Character: 0},
		End:   editor.Position{Line: 0, Character: 0},
	}}
	if _, err := m.Edit(ctx, res.ID, []editor.TextEdit{bad}); err == nil {
		t.Fatal("inverted edit should error")
	}
	if m.Len() != 0 {
		t.Fatalf("session should be closed after invalid edit; Len = %d", m.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	d := detect.New(nil)
	m := docsession.NewManager(d, 2)
	ctx := context.Background()

	s1 := m.Open(ctx, sample)
	s2 := m.Open(ctx, sample)
	// Touch s1 so s2 becomes the LRU victim.
	if _, err := m.Edit(ctx, s1.ID, nil); err != nil {
		t.Fatalf("touch edit: %v", err)
	}
	s3 := m.Open(ctx, sample)
	if m.Len() != 2 {
		t.Fatalf("Len = %d at capacity 2", m.Len())
	}
	if _, err := m.Edit(ctx, s2.ID, nil); err == nil {
		t.Fatal("evicted session s2 should be gone")
	}
	for _, id := range []string{s1.ID, s3.ID} {
		if _, err := m.Edit(ctx, id, nil); err != nil {
			t.Fatalf("session %s should have survived: %v", id, err)
		}
	}
}

func TestCapacityDefault(t *testing.T) {
	m := docsession.NewManager(detect.New(nil), 0)
	ctx := context.Background()
	for i := 0; i < docsession.DefaultCapacity+5; i++ {
		m.Open(ctx, sample)
	}
	if m.Len() != docsession.DefaultCapacity {
		t.Fatalf("Len = %d, want default capacity %d", m.Len(), docsession.DefaultCapacity)
	}
}

func TestObsCounters(t *testing.T) {
	d := detect.New(nil)
	m := docsession.NewManager(d, 2)
	reg := obs.NewRegistry()
	m.SetObs(reg)
	ctx := context.Background()

	s1 := m.Open(ctx, sample)
	m.Open(ctx, sample)
	m.Open(ctx, sample)                                // evicts one
	if _, err := m.Edit(ctx, s1.ID, []editor.TextEdit{ // s1 was evicted? (s1 is oldest)
		spanEdit(sample, 0, 0, "# x\n"),
	}); err == nil {
		t.Fatal("s1 should have been evicted as the LRU session")
	}

	snap := reg.Snapshot()
	if v := snap.Counters[obs.MetricSessionsOpened]; v != 3 {
		t.Errorf("%s = %v, want 3", obs.MetricSessionsOpened, v)
	}
	if v := snap.Counters[obs.MetricSessionsEvicted]; v != 1 {
		t.Errorf("%s = %v, want 1", obs.MetricSessionsEvicted, v)
	}
	if v := snap.Gauges[obs.MetricSessionsOpen]; v != 2 {
		t.Errorf("%s = %v, want 2", obs.MetricSessionsOpen, v)
	}
}

func TestConcurrentSessions(t *testing.T) {
	d := detect.New(nil)
	m := docsession.NewManager(d, 16)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur := sample
			res := m.Open(ctx, cur)
			for i := 0; i < 10; i++ {
				ins := fmt.Sprintf("x%d_%d = eval(user_input)\n", g, i)
				e := spanEdit(cur, len(cur), len(cur), ins)
				cur += ins
				r, err := m.Edit(ctx, res.ID, []editor.TextEdit{e})
				if err != nil {
					t.Errorf("goroutine %d edit %d: %v", g, i, err)
					return
				}
				if diff := sameFindings(r.Findings, fromScratch(t, d, cur)); diff != "" {
					t.Errorf("goroutine %d edit %d: %s", g, i, diff)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

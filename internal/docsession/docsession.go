// Package docsession manages stateful buffer sessions for incremental
// scanning: each session pins one detect.Prepared document plus the
// findings of its last scan, so an editor can stream keystroke-sized
// edits and get re-scans that only touch the dirty region
// (detect.RescanEdited) instead of re-submitting the whole buffer.
//
// The Manager is the single shared registry behind the serve protocol's
// "open"/"edit"/"close" verbs. It is bounded: at capacity, opening a new
// session evicts the least-recently-used one, so a fleet of editors that
// forget to close cannot grow the server without limit.
package docsession

import (
	"context"
	"fmt"
	"log/slog"
	"sync"

	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/editor"
	"github.com/dessertlab/patchitpy/internal/obs"
)

// DefaultCapacity bounds a Manager when NewManager is given a
// non-positive capacity.
const DefaultCapacity = 64

// session is one open buffer: the prepared document, the findings of the
// last scan over it (the replay input for the next RescanEdited), and an
// LRU stamp. The per-session mutex serializes edits on one buffer while
// letting distinct sessions scan concurrently.
type session struct {
	mu   sync.Mutex
	id   string
	prep *detect.Prepared
	last []detect.Finding
}

// Manager owns the open sessions. Safe for concurrent use.
type Manager struct {
	mu   sync.Mutex
	d    *detect.Detector
	cap  int
	seq  uint64 // id counter: sessions are named "s1", "s2", ...
	tick uint64 // LRU clock
	sess map[string]*session
	used map[string]uint64 // id -> last tick, guarded by mu

	// obs handles; detached counters (counting into nowhere) until
	// SetObs swaps in registry-owned ones, so call sites need no nil
	// guards.
	opened, closed, evicted, edits *obs.Counter

	// logger receives lifecycle events worth operator attention (LRU
	// evictions, error closes); discarding until SetLogger.
	logger *slog.Logger
}

// NewManager returns a Manager scanning with d, holding at most capacity
// open sessions (<= 0: DefaultCapacity).
func NewManager(d *detect.Detector, capacity int) *Manager {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Manager{
		d:       d,
		cap:     capacity,
		sess:    make(map[string]*session),
		used:    make(map[string]uint64),
		opened:  new(obs.Counter),
		closed:  new(obs.Counter),
		evicted: new(obs.Counter),
		edits:   new(obs.Counter),
		logger:  obs.DiscardLogger(),
	}
}

// SetObs attaches an observability registry: a live-session gauge plus
// opened/closed/evicted/edit counters. Pass nil to detach. Setup API —
// do not call with requests in flight.
func (m *Manager) SetObs(reg *obs.Registry) {
	if reg == nil {
		m.opened, m.closed, m.evicted = new(obs.Counter), new(obs.Counter), new(obs.Counter)
		m.edits = new(obs.Counter)
		return
	}
	reg.GaugeFunc(obs.MetricSessionsOpen, func() float64 { return float64(m.Len()) })
	m.opened = reg.Counter(obs.MetricSessionsOpened)
	m.closed = reg.Counter(obs.MetricSessionsClosed)
	m.evicted = reg.Counter(obs.MetricSessionsEvicted)
	m.edits = reg.Counter(obs.MetricSessionEdits)
}

// SetLogger attaches a structured logger for session lifecycle events.
// Pass nil to silence. Setup API — do not call with requests in flight.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.DiscardLogger()
	}
	m.logger = l
}

// Result is the outcome of an Open or Edit: the session's identity, the
// document generation after the operation, and the full findings over
// the current buffer text (replayed + re-scanned merged — never a
// delta, so clients stay stateless about findings).
type Result struct {
	ID       string
	Gen      uint64
	Findings []detect.Finding
	// Stats describes the incremental work of an Edit (zero on Open).
	Stats detect.RescanStats
}

// Open creates a session over src, scans it from scratch, and returns
// the new session's id with the findings. At capacity the
// least-recently-used session is evicted first.
func (m *Manager) Open(ctx context.Context, src string) Result {
	prep := m.d.Prepare(src)
	// Sessions must bypass the detector's scan cache: the cache would be
	// populated with every intermediate keystroke state, evicting useful
	// whole-document entries for states that recur essentially never.
	findings := m.d.ScanPreparedContext(ctx, prep, detect.Options{NoCache: true})

	m.mu.Lock()
	for len(m.sess) >= m.cap {
		m.evictOldestLocked()
	}
	m.seq++
	s := &session{id: fmt.Sprintf("s%d", m.seq), prep: prep, last: findings}
	m.sess[s.id] = s
	m.touchLocked(s.id)
	m.mu.Unlock()

	m.opened.Add(1)
	return Result{ID: s.id, Gen: prep.Gen(), Findings: findings}
}

// Edit applies edits to the session's buffer sequentially — each range
// is resolved against the text produced by the previous edit, the LSP
// ordering an editor's change events use — then re-scans incrementally.
// An invalid edit (inverted range) closes the session, since the buffer
// may already have diverged from the client's; the client should reopen.
func (m *Manager) Edit(ctx context.Context, id string, edits []editor.TextEdit) (Result, error) {
	s, err := m.lookup(id)
	if err != nil {
		return Result{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range edits {
		if err := s.prep.ApplyEdit(e); err != nil {
			m.drop(id)
			m.closed.Add(1)
			m.logger.WarnContext(ctx, "session closed on invalid edit",
				"session", id, "error", err.Error())
			return Result{}, fmt.Errorf("%v; session %s closed", err, id)
		}
	}
	findings, stats := m.d.RescanEditedContext(ctx, s.prep, s.last, detect.Options{NoCache: true})
	s.last = findings
	m.edits.Add(uint64(len(edits)))
	return Result{ID: id, Gen: s.prep.Gen(), Findings: findings, Stats: stats}, nil
}

// Close removes a session. Closing an unknown (or already-evicted) id is
// an error, so clients learn their session is gone.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	_, ok := m.sess[id]
	if ok {
		delete(m.sess, id)
		delete(m.used, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown session %q", id)
	}
	m.closed.Add(1)
	return nil
}

// Len reports the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sess)
}

// lookup finds id and bumps its LRU stamp.
func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sess[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	m.touchLocked(id)
	return s, nil
}

func (m *Manager) touchLocked(id string) {
	m.tick++
	m.used[id] = m.tick
}

// drop removes id without the unknown-id error (internal cleanup).
func (m *Manager) drop(id string) {
	m.mu.Lock()
	delete(m.sess, id)
	delete(m.used, id)
	m.mu.Unlock()
}

// evictOldestLocked removes the session with the smallest LRU stamp.
// The capacity is small (tens), so a linear scan beats maintaining a
// heap across the hot lookup path. Callers hold m.mu.
func (m *Manager) evictOldestLocked() {
	var victim string
	var oldest uint64
	first := true
	for id, tick := range m.used {
		if first || tick < oldest {
			victim, oldest, first = id, tick, false
		}
	}
	if victim == "" {
		return
	}
	delete(m.sess, victim)
	delete(m.used, victim)
	m.evicted.Add(1)
	m.logger.Warn("session evicted at capacity", "session", victim, "capacity", m.cap)
}

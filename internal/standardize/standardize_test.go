package standardize

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableOneVulnerableExample(t *testing.T) {
	// Paper Table I, row 1 (vulnerable): local data identifiers become
	// var#, API names and config parameters survive.
	src := `from flask import Flask, request
app = Flask(__name__)
@app.route("/comments")
def comments():
    comment = request.args.get("q", "default")
    return f"<p>{comment}</p>"
if __name__ == "__main__":
    app.run(debug=True)
`
	res := Standardize(src)
	txt := res.Text

	for _, keep := range []string{"Flask", "request", "app", "route", "args", "get", "run", "debug", "True", "__name__", "__main__"} {
		if !strings.Contains(txt, keep) {
			t.Errorf("preserved name %q missing from %q", keep, txt)
		}
	}
	// comment -> var#, and the positional string args of get() -> var#
	if strings.Contains(txt, "comment =") {
		t.Errorf("local identifier not standardized: %q", txt)
	}
	if !strings.Contains(txt, "var0") {
		t.Errorf("no var0 placeholder in %q", txt)
	}
	if strings.Contains(txt, `"q"`) || strings.Contains(txt, `"default"`) {
		t.Errorf("positional literal args not standardized: %q", txt)
	}
	// debug=True is a configuration parameter (the "=" rule) and must stay
	if !strings.Contains(txt, "debug = True") && !strings.Contains(txt, "debug=True") {
		t.Errorf("config parameter rewritten: %q", txt)
	}
}

func TestMappingRoundTrip(t *testing.T) {
	src := "value = request.args.get(\"id\", \"0\")\n"
	res := Standardize(src)
	if len(res.Mapping) == 0 {
		t.Fatal("empty mapping")
	}
	for ph, orig := range res.Mapping {
		if !strings.HasPrefix(ph, "var") {
			t.Errorf("placeholder %q", ph)
		}
		if orig == "" {
			t.Errorf("empty original for %q", ph)
		}
	}
	// distinct originals -> distinct placeholders
	seen := make(map[string]string)
	for ph, orig := range res.Mapping {
		if prev, ok := seen[orig]; ok && prev != ph {
			t.Errorf("original %q mapped to both %q and %q", orig, prev, ph)
		}
		seen[orig] = ph
	}
}

func TestConsistentRenaming(t *testing.T) {
	src := "data = fetch_data()\nresult = data\nfinal = result\n"
	res := Standardize(src)
	// "data" appears twice; both occurrences must map to the same var#.
	lines := strings.Split(strings.TrimSpace(res.Text), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	first := strings.Fields(lines[0])[0]  // var# on lhs of line 1
	second := strings.Fields(lines[1])[2] // var# on rhs of line 2
	if first != second {
		t.Errorf("inconsistent renaming: %q vs %q in %q", first, second, res.Text)
	}
}

func TestSameShapeDifferentNamesConverge(t *testing.T) {
	// The point of standardization: two snippets that differ only in
	// identifier naming must standardize to the same text.
	a := "name = request.args.get(\"name\", \"\")\nreturn f\"Hello {name}\"\n"
	b := "user = request.args.get(\"user\", \"\")\nreturn f\"Hello {user}\"\n"
	ra, rb := Standardize(a), Standardize(b)
	// f-string contents differ textually ({name} vs {user}) — compare the
	// non-fstring part
	la := strings.Split(ra.Text, "\n")[0]
	lb := strings.Split(rb.Text, "\n")[0]
	if la != lb {
		t.Errorf("standardized forms diverge:\n  %q\n  %q", la, lb)
	}
}

func TestKeywordArgValuesPreserved(t *testing.T) {
	src := "app.run(debug=True, use_reloader=False, port=8080)\n"
	res := Standardize(src)
	for _, keep := range []string{"debug", "True", "use_reloader", "False", "port", "8080"} {
		if !strings.Contains(res.Text, keep) {
			t.Errorf("config token %q lost: %q", keep, res.Text)
		}
	}
}

func TestImportsPreserved(t *testing.T) {
	src := "import os\nimport hashlib as h\nfrom flask import Flask, escape\n"
	res := Standardize(src)
	for _, keep := range []string{"os", "hashlib", "h", "Flask", "escape"} {
		if !strings.Contains(res.Text, keep) {
			t.Errorf("import name %q lost: %q", keep, res.Text)
		}
	}
	if len(res.Mapping) != 0 {
		t.Errorf("imports should not produce placeholders: %v", res.Mapping)
	}
}

func TestDefNamePreserved(t *testing.T) {
	src := "def handler(evt):\n    payload = evt\n    return payload\n"
	res := Standardize(src)
	if !strings.Contains(res.Text, "handler") {
		t.Errorf("def name lost: %q", res.Text)
	}
	if strings.Contains(res.Text, "payload") {
		t.Errorf("local not standardized: %q", res.Text)
	}
}

func TestCalledNamesPreserved(t *testing.T) {
	src := "result = sanitize(data)\n"
	res := Standardize(src)
	if !strings.Contains(res.Text, "sanitize") {
		t.Errorf("called function lost: %q", res.Text)
	}
}

func TestAttributeChainsPreserved(t *testing.T) {
	src := "conn = sqlite3.connect(path)\ncur = conn.cursor()\n"
	res := Standardize(src)
	for _, keep := range []string{"sqlite3", "connect", "conn", "cursor"} {
		if !strings.Contains(res.Text, keep) {
			t.Errorf("%q lost: %q", keep, res.Text)
		}
	}
}

func TestCommentsDropped(t *testing.T) {
	src := "x = 1  # secret comment\n"
	res := Standardize(src)
	if strings.Contains(res.Text, "secret") {
		t.Errorf("comment survived: %q", res.Text)
	}
}

func TestTruncatedSnippetDegradesGracefully(t *testing.T) {
	src := "value = request.args.get('q'\nmore = 'unterminated"
	res := Standardize(src)
	if res.Text == "" {
		t.Error("no output for truncated snippet")
	}
}

func TestExtraPreservedNames(t *testing.T) {
	s := New("mysecret")
	res := s.Standardize("mysecret = 42\nother = 7\n")
	if !strings.Contains(res.Text, "mysecret") {
		t.Errorf("extra preserved name lost: %q", res.Text)
	}
	if strings.Contains(res.Text, "other") {
		t.Errorf("non-preserved name kept: %q", res.Text)
	}
}

func TestDeterminism(t *testing.T) {
	src := "a = f(b)\nc = g(a)\nd = h(c)\n"
	first := Standardize(src).Text
	for i := 0; i < 5; i++ {
		if got := Standardize(src).Text; got != first {
			t.Fatalf("nondeterministic: %q vs %q", got, first)
		}
	}
}

func TestStandardizeNeverPanics(t *testing.T) {
	f := func(src string) bool {
		res := Standardize(src)
		// every placeholder in the mapping must look like var<N>
		for ph := range res.Mapping {
			if !strings.HasPrefix(ph, "var") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestItoa(t *testing.T) {
	for i, want := range map[int]string{0: "0", 7: "7", 12: "12", 105: "105"} {
		if got := itoa(i); got != want {
			t.Errorf("itoa(%d) = %q, want %q", i, got, want)
		}
	}
}

func BenchmarkStandardize(b *testing.B) {
	src := `from flask import Flask, request
app = Flask(__name__)
@app.route("/comments")
def comments():
    comment = request.args.get("q", "default")
    return f"<p>{comment}</p>"
if __name__ == "__main__":
    app.run(debug=True)
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Standardize(src)
	}
}

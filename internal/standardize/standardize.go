// Package standardize implements the paper's named-entity tagger (§II-A):
// it rewrites Python snippets into a standardized form in which data-flow
// identifiers and positional literal arguments become var0, var1, ...,
// while everything that captures the *behaviour* of the code is preserved —
// keywords, operators, called function names, attribute paths, imported
// names and, crucially, configuration parameters (keyword arguments
// recognized by the "=" symbol and constants such as True/False).
//
// Standardization makes structurally identical snippets textually
// comparable, which is what lets the LCS step extract shared vulnerable and
// safe implementation patterns from sample pairs.
package standardize

import (
	"strings"

	"github.com/dessertlab/patchitpy/internal/pytoken"
)

// Result is a standardized snippet.
type Result struct {
	// Tokens is the standardized token stream (no NEWLINE/INDENT markers;
	// those are rendered into Text).
	Tokens []string
	// Text is the standardized source code.
	Text string
	// Mapping maps each var# placeholder back to the original token text.
	Mapping map[string]string
}

// builtins and other names whose identity is behaviourally meaningful and
// must survive standardization.
var preservedNames = map[string]bool{
	// builtins commonly seen in generated snippets
	"print": true, "len": true, "open": true, "input": true, "range": true,
	"str": true, "int": true, "float": true, "bool": true, "bytes": true,
	"list": true, "dict": true, "set": true, "tuple": true, "type": true,
	"isinstance": true, "getattr": true, "setattr": true, "hasattr": true,
	"eval": true, "exec": true, "compile": true, "__import__": true,
	"super": true, "object": true, "Exception": true, "ValueError": true,
	"TypeError": true, "KeyError": true, "RuntimeError": true, "OSError": true,
	"IOError": true, "format": true, "repr": true, "hash": true, "id": true,
	"map": true, "filter": true, "zip": true, "sorted": true, "enumerate": true,
	"min": true, "max": true, "sum": true, "abs": true, "round": true,
	"self": true, "cls": true,
	// dunder names carry framework meaning (__name__ == "__main__")
	"__name__": true, "__main__": true, "__file__": true, "__init__": true,
}

// Standardizer rewrites snippets. The zero value is not usable; call New.
type Standardizer struct {
	preserve map[string]bool
}

// New returns a Standardizer with the default preserved-name set, plus any
// extra names the caller wants kept verbatim.
func New(extraPreserved ...string) *Standardizer {
	p := make(map[string]bool, len(preservedNames)+len(extraPreserved))
	for k := range preservedNames {
		p[k] = true
	}
	for _, name := range extraPreserved {
		p[name] = true
	}
	return &Standardizer{preserve: p}
}

// Standardize rewrites src. Tokenization errors degrade gracefully: the
// tokens produced before the error are standardized and the remainder of
// the source is appended verbatim. (AI snippets are often truncated, and
// the paper's tool explicitly tolerates that.)
func (s *Standardizer) Standardize(src string) Result {
	toks, err := pytoken.TokenizeAll(src)
	res := s.standardizeTokens(toks)
	if err != nil {
		if se, ok := err.(*pytoken.SyntaxError); ok && se.Pos.Offset < len(src) {
			res.Text += src[se.Pos.Offset:]
		}
	}
	return res
}

// Standardize is a convenience wrapper using the default standardizer.
func Standardize(src string) Result { return New().Standardize(src) }

func (s *Standardizer) standardizeTokens(toks []pytoken.Token) Result {
	preserved := s.collectPreserved(toks)

	mapping := make(map[string]string)
	assigned := make(map[string]string) // original -> var#

	placeholder := func(original string) string {
		if v, ok := assigned[original]; ok {
			return v
		}
		v := "var" + itoa(len(assigned))
		assigned[original] = v
		mapping[v] = original
		return v
	}

	out := make([]string, 0, len(toks))
	var text strings.Builder
	depth := 0
	prevText := ""
	prevWord := false

	emit := func(tok pytoken.Token, txt string) {
		if tok.Kind == pytoken.KindNewline || tok.Kind == pytoken.KindNL {
			text.WriteByte('\n')
			prevText, prevWord = "", false
			return
		}
		if tok.Kind == pytoken.KindIndent || tok.Kind == pytoken.KindDedent || tok.Kind == pytoken.KindEOF {
			return
		}
		isWord := tok.Kind == pytoken.KindName || tok.Kind == pytoken.KindKeyword ||
			tok.Kind == pytoken.KindNumber || tok.Kind == pytoken.KindString
		if prevText != "" && needSpace(prevText, prevWord, txt, isWord) {
			text.WriteByte(' ')
		}
		text.WriteString(txt)
		prevText, prevWord = txt, isWord || txt == ")" || txt == "]" || txt == "}"
		out = append(out, txt)
	}

	// standardizeFString rewrites {name} interpolations whose name has
	// been (or can be) standardized; the paper's Table I shows f-string
	// interpolations rendered as {var0}.
	standardizeFString := func(raw string) string {
		return rewriteBraced(raw, func(name string) string {
			if s.preserve[name] || preserved[name] {
				return name
			}
			return placeholder(name)
		})
	}

	for i, tok := range toks {
		switch tok.Kind {
		case pytoken.KindOp:
			switch tok.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				if depth > 0 {
					depth--
				}
			}
			emit(tok, tok.Text)
		case pytoken.KindComment:
			// comments are dropped from the standardized form
		case pytoken.KindName:
			txt := tok.Text
			if s.standardizable(toks, i, depth, preserved) {
				txt = placeholder(tok.Text)
			}
			emit(tok, txt)
		case pytoken.KindString:
			txt := tok.Text
			if literalStandardizable(toks, i, depth) {
				txt = placeholder(tok.Text)
			} else if isFStringToken(txt) {
				txt = standardizeFString(txt)
			}
			emit(tok, txt)
		case pytoken.KindNumber:
			txt := tok.Text
			if literalStandardizable(toks, i, depth) {
				txt = placeholder(tok.Text)
			}
			emit(tok, txt)
		default:
			emit(tok, tok.Text)
		}
	}

	return Result{Tokens: out, Text: text.String(), Mapping: mapping}
}

func isFStringToken(s string) bool {
	for i := 0; i < len(s) && i < 2; i++ {
		switch s[i] {
		case 'f', 'F':
			return true
		case '\'', '"':
			return false
		}
	}
	return false
}

// rewriteBraced applies fn to each bare identifier appearing directly
// inside {...} within an f-string token. Interpolations with attribute
// access, calls or format specs are left untouched beyond the leading
// identifier when it stands alone.
func rewriteBraced(raw string, fn func(string) string) string {
	var b strings.Builder
	b.Grow(len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != '{' {
			b.WriteByte(c)
			continue
		}
		// literal {{ stays
		if i+1 < len(raw) && raw[i+1] == '{' {
			b.WriteString("{{")
			i++
			continue
		}
		j := i + 1
		for j < len(raw) && isIdentByte(raw[j]) {
			j++
		}
		name := raw[i+1 : j]
		if name != "" && j < len(raw) && (raw[j] == '}' || raw[j] == '!' || raw[j] == ':') {
			b.WriteByte('{')
			b.WriteString(fn(name))
			i = j - 1
			continue
		}
		b.WriteByte('{')
	}
	return b.String()
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// spacedOps are rendered with a space on both sides in standardized text.
var spacedOps = map[string]bool{
	"=": true, "==": true, "!=": true, "+": true, "-": true, "<": true,
	">": true, "<=": true, ">=": true, "->": true, ":=": true, "+=": true,
	"-=": true, "*=": true, "/=": true, "//=": true, "%=": true, "**=": true,
	"|": true, "&": true, "^": true, "<<": true, ">>": true,
}

func needSpace(prev string, prevWord bool, cur string, curWord bool) bool {
	if prevWord && curWord {
		return true
	}
	if spacedOps[cur] || spacedOps[prev] {
		return true
	}
	if prev == "," {
		return true
	}
	return false
}

// collectPreserved scans the token stream and marks every name whose
// identity must be kept. A name is preserved when *any* occurrence of it
// appears in a behaviour-defining context: imported, defined by def/class,
// called, used as an attribute root or attribute, used as a decorator, or
// used as a keyword-argument name. Preserving by name (not by occurrence)
// keeps the rewrite consistent — if "app" is preserved in "@app.route" it
// stays "app" in "app = Flask(__name__)" too, matching the paper's Table I.
func (s *Standardizer) collectPreserved(toks []pytoken.Token) map[string]bool {
	preserved := make(map[string]bool)
	depth := 0
	for i, tok := range toks {
		if tok.Kind == pytoken.KindOp {
			switch tok.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				if depth > 0 {
					depth--
				}
			}
			continue
		}
		switch {
		case tok.Is(pytoken.KindKeyword, "import"), tok.Is(pytoken.KindKeyword, "from"):
			for j := i + 1; j < len(toks); j++ {
				t := toks[j]
				if t.Kind == pytoken.KindNewline || t.Kind == pytoken.KindEOF {
					break
				}
				if t.Kind == pytoken.KindName {
					preserved[t.Text] = true
				}
			}
		case tok.Is(pytoken.KindKeyword, "def"), tok.Is(pytoken.KindKeyword, "class"):
			if i+1 < len(toks) && toks[i+1].Kind == pytoken.KindName {
				preserved[toks[i+1].Text] = true
			}
		case tok.Kind == pytoken.KindName:
			prev := prevCode(toks, i)
			next := nextCode(toks, i)
			switch {
			// attribute: foo.bar — both the root and the attribute carry
			// the API fingerprint
			case prev >= 0 && toks[prev].Is(pytoken.KindOp, "."):
				preserved[tok.Text] = true
			case next >= 0 && toks[next].Is(pytoken.KindOp, "."):
				preserved[tok.Text] = true
			// called function name: name(...)
			case next >= 0 && toks[next].Is(pytoken.KindOp, "("):
				preserved[tok.Text] = true
			// keyword-argument name inside a call: the paper's "=" rule
			case depth > 0 && next >= 0 && toks[next].Is(pytoken.KindOp, "="):
				preserved[tok.Text] = true
			// decorator
			case prev >= 0 && toks[prev].Is(pytoken.KindOp, "@"):
				preserved[tok.Text] = true
			}
		}
	}
	return preserved
}

// standardizable decides whether the NAME token at index i should become a
// var# placeholder.
func (s *Standardizer) standardizable(toks []pytoken.Token, i, depth int, preserved map[string]bool) bool {
	name := toks[i].Text
	if s.preserve[name] || preserved[name] {
		return false
	}
	// keyword-argument *position* still guards against standardizing a
	// config name that somehow escaped the preserve pass
	next := nextCode(toks, i)
	if depth > 0 && next >= 0 && toks[next].Is(pytoken.KindOp, "=") {
		return false
	}
	return true
}

// literalStandardizable decides whether a STRING or NUMBER literal should be
// standardized: only positional arguments inside call parentheses are, and
// configuration values (after '=') never are.
func literalStandardizable(toks []pytoken.Token, i, depth int) bool {
	if depth == 0 {
		return false
	}
	prev := prevCode(toks, i)
	if prev < 0 {
		return false
	}
	pt := toks[prev]
	// value of a keyword argument (config) -> preserve
	if pt.Is(pytoken.KindOp, "=") {
		return false
	}
	// positional argument or element: preceded by '(' or ','
	if pt.Is(pytoken.KindOp, "(") || pt.Is(pytoken.KindOp, ",") {
		return true
	}
	return false
}

func prevCode(toks []pytoken.Token, i int) int {
	for j := i - 1; j >= 0; j-- {
		switch toks[j].Kind {
		case pytoken.KindComment, pytoken.KindNL, pytoken.KindNewline,
			pytoken.KindIndent, pytoken.KindDedent:
			continue
		}
		return j
	}
	return -1
}

func nextCode(toks []pytoken.Token, i int) int {
	for j := i + 1; j < len(toks); j++ {
		switch toks[j].Kind {
		case pytoken.KindComment, pytoken.KindNL, pytoken.KindNewline,
			pytoken.KindIndent, pytoken.KindDedent:
			continue
		}
		return j
	}
	return -1
}

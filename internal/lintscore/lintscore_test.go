package lintscore

import (
	"strings"
	"testing"
)

func issuesWithCode(rep Report, code string) int {
	n := 0
	for _, is := range rep.Issues {
		if is.Code == code {
			n++
		}
	}
	return n
}

func TestCleanCodeScoresHigh(t *testing.T) {
	src := `import os


def read_config(path):
    with open(path) as fh:
        return fh.read() + os.linesep
`
	rep := Lint(src)
	if len(rep.Issues) != 0 {
		t.Errorf("issues on clean code: %+v", rep.Issues)
	}
	if rep.Score != 10 {
		t.Errorf("score = %v, want 10", rep.Score)
	}
}

func TestBareExcept(t *testing.T) {
	src := "try:\n    f()\nexcept:\n    pass\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0702") != 1 {
		t.Errorf("bare-except not flagged: %+v", rep.Issues)
	}
}

func TestUnusedImport(t *testing.T) {
	src := "import os\nimport sys\nprint(sys.argv)\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0611") != 1 {
		t.Errorf("unused import count: %+v", rep.Issues)
	}
	for _, is := range rep.Issues {
		if is.Code == "W0611" && !strings.Contains(is.Message, "os") {
			t.Errorf("wrong import flagged: %s", is.Message)
		}
	}
}

func TestImportAliasUsage(t *testing.T) {
	src := "import numpy as np\nx = np.zeros(3)\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0611") != 0 {
		t.Errorf("aliased import wrongly unused: %+v", rep.Issues)
	}
}

func TestFromImportUsage(t *testing.T) {
	src := "from flask import Flask, request\napp = Flask(__name__)\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0611") != 1 {
		t.Errorf("want exactly request unused: %+v", rep.Issues)
	}
}

func TestImportUsedInFString(t *testing.T) {
	src := "import os\nmsg = f\"sep is {os.sep}\"\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0611") != 0 {
		t.Errorf("f-string usage not recognized: %+v", rep.Issues)
	}
}

func TestRedefinedBuiltin(t *testing.T) {
	src := "list = [1, 2]\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0622") != 1 {
		t.Errorf("redefined builtin not flagged: %+v", rep.Issues)
	}
}

func TestMutableDefault(t *testing.T) {
	src := "def f(xs=[]):\n    return xs\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W0102") != 1 {
		t.Errorf("mutable default not flagged: %+v", rep.Issues)
	}
}

func TestNamingConventions(t *testing.T) {
	src := "def BadName():\n    pass\n\nclass lower_class:\n    pass\n"
	rep := Lint(src)
	if issuesWithCode(rep, "C0103") != 2 {
		t.Errorf("naming issues: %+v", rep.Issues)
	}
}

func TestLongLine(t *testing.T) {
	src := "x = \"" + strings.Repeat("a", 120) + "\"\n"
	rep := Lint(src)
	if issuesWithCode(rep, "C0301") != 1 {
		t.Errorf("long line not flagged: %+v", rep.Issues)
	}
}

func TestFStringWithoutInterpolation(t *testing.T) {
	src := "msg = f\"no placeholders here\"\n"
	rep := Lint(src)
	if issuesWithCode(rep, "W1309") != 1 {
		t.Errorf("pointless f-string not flagged: %+v", rep.Issues)
	}
}

func TestSyntaxErrorTanksScore(t *testing.T) {
	rep := Lint("def broken(:)\nx = 1\n")
	if issuesWithCode(rep, "E0001") == 0 {
		t.Errorf("syntax error not reported: %+v", rep.Issues)
	}
	if rep.Score > 9 {
		t.Errorf("score = %v despite syntax error", rep.Score)
	}
}

func TestScoreFormula(t *testing.T) {
	// 1 warning over 10 statements -> 10 - 10*(1/10) = 9.0
	var b strings.Builder
	b.WriteString("try:\n    f()\nexcept:\n    pass\n")
	for i := 0; i < 7; i++ {
		b.WriteString("x = 1\n")
	}
	rep := Lint(b.String())
	if rep.Statements != 10 {
		t.Fatalf("statements = %d, want 10 (try + call + pass + 7 assigns)", rep.Statements)
	}
	if rep.Score != 9 {
		t.Errorf("score = %v, want 9", rep.Score)
	}
}

func TestScoreClampedAtZero(t *testing.T) {
	src := "try:\n    f()\nexcept:\n    pass\n"
	rep := Lint(src)
	if rep.Score < 0 || rep.Score > 10 {
		t.Errorf("score out of range: %v", rep.Score)
	}
}

func TestScoreShorthand(t *testing.T) {
	if Score("x = 1\n") != 10 {
		t.Error("Score helper mismatch")
	}
}

func TestIssueKindString(t *testing.T) {
	for k, want := range map[IssueKind]string{
		KindError: "error", KindWarning: "warning",
		KindRefactor: "refactor", KindConvention: "convention",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if IssueKind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestEmptySource(t *testing.T) {
	rep := Lint("")
	if rep.Score != 10 {
		t.Errorf("empty source score = %v", rep.Score)
	}
}

func BenchmarkLint(b *testing.B) {
	src := `from flask import Flask, request
app = Flask(__name__)

@app.route("/items")
def items():
    names = request.args.get("names", "")
    try:
        values = [n.strip() for n in names.split(",") if n]
    except ValueError:
        values = []
    return {"items": values}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lint(src)
	}
}

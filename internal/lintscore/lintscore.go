// Package lintscore is a Pylint-style code-quality scorer for Python
// source. It mirrors the parts of Pylint the paper's evaluation relies on:
// a small set of error/warning/convention checks aggregated into the
// familiar 0–10 score with Pylint's formula
//
//	10.0 - 10 * (5*error + warning + refactor + convention) / statements
//
// so that patch quality can be compared across tools the way §III-C does.
package lintscore

import (
	"strings"

	"github.com/dessertlab/patchitpy/internal/pyast"
)

// IssueKind classifies a lint finding, following Pylint's categories.
type IssueKind int

// Issue kinds.
const (
	KindError IssueKind = iota + 1
	KindWarning
	KindRefactor
	KindConvention
)

// String returns the Pylint-style single-word label.
func (k IssueKind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindWarning:
		return "warning"
	case KindRefactor:
		return "refactor"
	case KindConvention:
		return "convention"
	}
	return "unknown"
}

// Issue is one lint finding.
type Issue struct {
	Kind    IssueKind
	Code    string // e.g. "W0702"
	Message string
	Line    int
}

// Report is the outcome of linting one source file.
type Report struct {
	Issues     []Issue
	Statements int
	// Score is the Pylint-formula score clamped to [0, 10].
	Score float64
}

// Lint analyzes src and returns the quality report.
func Lint(src string) Report {
	var rep Report
	mod, err := pyast.Parse(src)
	if err != nil {
		rep.Statements = 1
		rep.Issues = append(rep.Issues, Issue{Kind: KindError, Code: "E0001", Message: "syntax error: " + err.Error(), Line: 1})
		rep.Score = 0
		return rep
	}
	for _, pe := range mod.Errors {
		rep.Issues = append(rep.Issues, Issue{
			Kind: KindError, Code: "E0001",
			Message: "syntax error: " + pe.Msg, Line: pe.Position.Line,
		})
	}

	rep.Statements = countStatements(mod)
	rep.Issues = append(rep.Issues, checkBareExcept(mod)...)
	rep.Issues = append(rep.Issues, checkUnusedImports(mod)...)
	rep.Issues = append(rep.Issues, checkRedefinedBuiltins(mod)...)
	rep.Issues = append(rep.Issues, checkMutableDefaults(mod)...)
	rep.Issues = append(rep.Issues, checkNaming(mod)...)
	rep.Issues = append(rep.Issues, checkLongLines(src)...)
	rep.Issues = append(rep.Issues, checkFStringWithoutInterp(mod)...)

	var e, w, r, c int
	for _, is := range rep.Issues {
		switch is.Kind {
		case KindError:
			e++
		case KindWarning:
			w++
		case KindRefactor:
			r++
		case KindConvention:
			c++
		}
	}
	stmts := rep.Statements
	if stmts == 0 {
		stmts = 1
	}
	score := 10 - 10*float64(5*e+w+r+c)/float64(stmts)
	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	rep.Score = score
	return rep
}

// Score is shorthand for Lint(src).Score.
func Score(src string) float64 { return Lint(src).Score }

func countStatements(mod *pyast.Module) int {
	count := 0
	pyast.Walk(mod, func(n pyast.Node) bool {
		if _, ok := n.(pyast.Stmt); ok {
			count++
		}
		return true
	})
	return count
}

func checkBareExcept(mod *pyast.Module) []Issue {
	var out []Issue
	pyast.Walk(mod, func(n pyast.Node) bool {
		if t, ok := n.(*pyast.Try); ok {
			for _, h := range t.Handlers {
				if h.Type == nil {
					out = append(out, Issue{
						Kind: KindWarning, Code: "W0702",
						Message: "no exception type specified (bare-except)",
						Line:    h.Position.Line,
					})
				}
			}
		}
		return true
	})
	return out
}

func checkUnusedImports(mod *pyast.Module) []Issue {
	type imported struct {
		name string
		line int
	}
	var imports []imported
	for _, s := range mod.Body {
		switch im := s.(type) {
		case *pyast.Import:
			for _, a := range im.Names {
				name := a.AsName
				if name == "" {
					name = a.Name
					if dot := strings.IndexByte(name, '.'); dot >= 0 {
						name = name[:dot]
					}
				}
				imports = append(imports, imported{name, im.Position.Line})
			}
		case *pyast.ImportFrom:
			if im.Star {
				continue
			}
			for _, a := range im.Names {
				name := a.AsName
				if name == "" {
					name = a.Name
				}
				imports = append(imports, imported{name, im.Position.Line})
			}
		}
	}
	if len(imports) == 0 {
		return nil
	}
	used := make(map[string]bool)
	pyast.Walk(mod, func(n pyast.Node) bool {
		switch x := n.(type) {
		case *pyast.Name:
			used[x.ID] = true
		case *pyast.StringLit:
			if x.FString {
				// names may be referenced inside f-strings
				for _, imp := range imports {
					if strings.Contains(x.Raw, imp.name) {
						used[imp.name] = true
					}
				}
			}
		}
		return true
	})
	var out []Issue
	for _, imp := range imports {
		if !used[imp.name] {
			out = append(out, Issue{
				Kind: KindWarning, Code: "W0611",
				Message: "unused import " + imp.name,
				Line:    imp.line,
			})
		}
	}
	return out
}

var pyBuiltins = map[string]bool{
	"list": true, "dict": true, "set": true, "str": true, "int": true,
	"float": true, "bool": true, "type": true, "open": true, "input": true,
	"id": true, "len": true, "max": true, "min": true, "sum": true,
	"filter": true, "map": true, "format": true, "hash": true, "bytes": true,
}

func checkRedefinedBuiltins(mod *pyast.Module) []Issue {
	var out []Issue
	pyast.Walk(mod, func(n pyast.Node) bool {
		if as, ok := n.(*pyast.Assign); ok {
			for _, t := range as.Targets {
				if name, ok := t.(*pyast.Name); ok && pyBuiltins[name.ID] {
					out = append(out, Issue{
						Kind: KindWarning, Code: "W0622",
						Message: "redefining built-in '" + name.ID + "'",
						Line:    name.Position.Line,
					})
				}
			}
		}
		return true
	})
	return out
}

func checkMutableDefaults(mod *pyast.Module) []Issue {
	var out []Issue
	for _, fd := range pyast.Functions(mod) {
		for _, p := range fd.Params {
			switch p.Default.(type) {
			case *pyast.List, *pyast.Dict, *pyast.Set:
				out = append(out, Issue{
					Kind: KindWarning, Code: "W0102",
					Message: "dangerous default value for parameter " + p.Name,
					Line:    fd.Position.Line,
				})
			}
		}
	}
	return out
}

func checkNaming(mod *pyast.Module) []Issue {
	var out []Issue
	for _, fd := range pyast.Functions(mod) {
		if !isSnakeCase(fd.Name) {
			out = append(out, Issue{
				Kind: KindConvention, Code: "C0103",
				Message: "function name \"" + fd.Name + "\" doesn't conform to snake_case",
				Line:    fd.Position.Line,
			})
		}
	}
	pyast.Walk(mod, func(n pyast.Node) bool {
		if cd, ok := n.(*pyast.ClassDef); ok {
			if !isCapWords(cd.Name) {
				out = append(out, Issue{
					Kind: KindConvention, Code: "C0103",
					Message: "class name \"" + cd.Name + "\" doesn't conform to CapWords",
					Line:    cd.Position.Line,
				})
			}
		}
		return true
	})
	return out
}

func isSnakeCase(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			return false
		}
	}
	return true
}

func isCapWords(name string) bool {
	if name == "" {
		return false
	}
	return name[0] >= 'A' && name[0] <= 'Z' && !strings.Contains(name, "_")
}

func checkLongLines(src string) []Issue {
	var out []Issue
	for i, line := range strings.Split(src, "\n") {
		if len(line) > 100 {
			out = append(out, Issue{
				Kind: KindConvention, Code: "C0301",
				Message: "line too long",
				Line:    i + 1,
			})
		}
	}
	return out
}

func checkFStringWithoutInterp(mod *pyast.Module) []Issue {
	var out []Issue
	pyast.Walk(mod, func(n pyast.Node) bool {
		if s, ok := n.(*pyast.StringLit); ok && s.FString && !strings.Contains(s.Raw, "{") {
			out = append(out, Issue{
				Kind: KindWarning, Code: "W1309",
				Message: "f-string without any interpolated variables",
				Line:    s.Position.Line,
			})
		}
		return true
	})
	return out
}

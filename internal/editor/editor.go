// Package editor reproduces the editor-integration layer of the paper's
// VS Code extension: Position/Range/TextEdit types modelled on the VS Code
// Extension API, an edit applier equivalent to editBuilder.replace(), and
// a line-oriented JSON session protocol (served by `patchitpy serve`) that
// mirrors the extension's detect → popup → patch interaction.
package editor

import (
	"fmt"
	"sort"
	"strings"
)

// Position is a zero-based line/character location, as in the VS Code API.
type Position struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// Range is a half-open [Start, End) span.
type Range struct {
	Start Position `json:"start"`
	End   Position `json:"end"`
}

// TextEdit replaces the text in Range with NewText.
type TextEdit struct {
	Range   Range  `json:"range"`
	NewText string `json:"newText"`
}

// WorkspaceEdit is an ordered set of edits to one document.
type WorkspaceEdit struct {
	Edits []TextEdit `json:"edits"`
}

// OffsetToPosition converts a byte offset in src to a Position.
func OffsetToPosition(src string, offset int) Position {
	if offset > len(src) {
		offset = len(src)
	}
	line := strings.Count(src[:offset], "\n")
	col := offset
	if idx := strings.LastIndexByte(src[:offset], '\n'); idx >= 0 {
		col = offset - idx - 1
	}
	return Position{Line: line, Character: col}
}

// PositionToOffset converts a Position to a byte offset in src. Positions
// past the end of a line clamp to the line end; lines past the end clamp to
// len(src).
func PositionToOffset(src string, pos Position) int {
	offset := 0
	for line := 0; line < pos.Line; line++ {
		nl := strings.IndexByte(src[offset:], '\n')
		if nl < 0 {
			return len(src)
		}
		offset += nl + 1
	}
	lineEnd := strings.IndexByte(src[offset:], '\n')
	if lineEnd < 0 {
		lineEnd = len(src) - offset
	}
	col := pos.Character
	if col > lineEnd {
		col = lineEnd
	}
	return offset + col
}

// SpanEdit builds a TextEdit replacing src[start:end] with newText.
func SpanEdit(src string, start, end int, newText string) TextEdit {
	return TextEdit{
		Range: Range{
			Start: OffsetToPosition(src, start),
			End:   OffsetToPosition(src, end),
		},
		NewText: newText,
	}
}

// ApplyEdits applies the edits to src — the equivalent of the extension's
// editBuilder.replace() loop. Overlapping edits are an error.
func ApplyEdits(src string, edits []TextEdit) (string, error) {
	type offsetEdit struct {
		start, end int
		text       string
	}
	resolved := make([]offsetEdit, 0, len(edits))
	for _, e := range edits {
		start := PositionToOffset(src, e.Range.Start)
		end := PositionToOffset(src, e.Range.End)
		if end < start {
			return "", fmt.Errorf("edit range inverted: %+v", e.Range)
		}
		resolved = append(resolved, offsetEdit{start, end, e.NewText})
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].start < resolved[j].start })
	for i := 1; i < len(resolved); i++ {
		if resolved[i].start < resolved[i-1].end {
			return "", fmt.Errorf("overlapping edits at offset %d", resolved[i].start)
		}
	}
	var b strings.Builder
	b.Grow(len(src))
	last := 0
	for _, e := range resolved {
		b.WriteString(src[last:e.start])
		b.WriteString(e.text)
		last = e.end
	}
	b.WriteString(src[last:])
	return b.String(), nil
}

// Package editor reproduces the editor-integration layer of the paper's
// VS Code extension: Position/Range/TextEdit types modelled on the VS Code
// Extension API, an edit applier equivalent to editBuilder.replace(), and
// a line-oriented JSON session protocol (served by `patchitpy serve`) that
// mirrors the extension's detect → popup → patch interaction.
package editor

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dessertlab/patchitpy/internal/lineindex"
)

// Position is a zero-based line/character location, as in the VS Code API.
type Position struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// Range is a half-open [Start, End) span.
type Range struct {
	Start Position `json:"start"`
	End   Position `json:"end"`
}

// TextEdit replaces the text in Range with NewText.
type TextEdit struct {
	Range   Range  `json:"range"`
	NewText string `json:"newText"`
}

// WorkspaceEdit is an ordered set of edits to one document.
type WorkspaceEdit struct {
	Edits []TextEdit `json:"edits"`
}

// PosMapper converts between byte offsets and Positions of one document
// through a shared line index: build it once, then every conversion is
// O(log lines). The package-level OffsetToPosition/PositionToOffset build
// a throwaway index per call (O(n)); anything converting more than one
// position of the same document should use a PosMapper — the old
// strings.Count/IndexByte loops made such callers quadratic.
type PosMapper struct {
	src string
	ix  lineindex.Index
}

// NewPosMapper indexes src for repeated position conversions.
func NewPosMapper(src string) PosMapper {
	return PosMapper{src: src, ix: lineindex.New(src)}
}

// MapperFor wraps an already-built line index of src. The index must have
// been built from exactly this source.
func MapperFor(src string, ix lineindex.Index) PosMapper {
	return PosMapper{src: src, ix: ix}
}

// OffsetToPosition converts a byte offset to a Position. Offsets past the
// end of the source clamp to the end.
func (m PosMapper) OffsetToPosition(offset int) Position {
	if offset > len(m.src) {
		offset = len(m.src)
	}
	line, col := m.ix.Position(offset)
	return Position{Line: line, Character: col}
}

// PositionToOffset converts a Position to a byte offset. Positions past
// the end of a line clamp to the line end; lines past the end clamp to
// len(src).
func (m PosMapper) PositionToOffset(pos Position) int {
	if pos.Line < 0 {
		pos.Line = 0
	}
	if pos.Line >= m.ix.NumLines() {
		return len(m.src)
	}
	start := m.ix.LineStart(pos.Line)
	end := len(m.src)
	if pos.Line+1 < m.ix.NumLines() {
		end = m.ix.LineStart(pos.Line+1) - 1 // exclude the '\n'
	}
	col := pos.Character
	if col > end-start {
		col = end - start
	}
	if col < 0 {
		col = 0
	}
	return start + col
}

// Resolve converts a Range to byte offsets.
func (m PosMapper) Resolve(r Range) (start, end int) {
	return m.PositionToOffset(r.Start), m.PositionToOffset(r.End)
}

// OffsetToPosition converts a byte offset in src to a Position.
func OffsetToPosition(src string, offset int) Position {
	return NewPosMapper(src).OffsetToPosition(offset)
}

// PositionToOffset converts a Position to a byte offset in src. Positions
// past the end of a line clamp to the line end; lines past the end clamp to
// len(src).
func PositionToOffset(src string, pos Position) int {
	return NewPosMapper(src).PositionToOffset(pos)
}

// SpanEdit builds a TextEdit replacing src[start:end] with newText.
func SpanEdit(src string, start, end int, newText string) TextEdit {
	return TextEdit{
		Range: Range{
			Start: OffsetToPosition(src, start),
			End:   OffsetToPosition(src, end),
		},
		NewText: newText,
	}
}

// ApplyEdits applies the edits to src — the equivalent of the extension's
// editBuilder.replace() loop. Overlapping edits are an error.
func ApplyEdits(src string, edits []TextEdit) (string, error) {
	type offsetEdit struct {
		start, end int
		text       string
	}
	m := NewPosMapper(src)
	resolved := make([]offsetEdit, 0, len(edits))
	for _, e := range edits {
		start, end := m.Resolve(e.Range)
		if end < start {
			return "", fmt.Errorf("edit range inverted: %+v", e.Range)
		}
		resolved = append(resolved, offsetEdit{start, end, e.NewText})
	}
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].start < resolved[j].start })
	for i := 1; i < len(resolved); i++ {
		if resolved[i].start < resolved[i-1].end {
			return "", fmt.Errorf("overlapping edits at offset %d", resolved[i].start)
		}
	}
	var b strings.Builder
	b.Grow(len(src))
	last := 0
	for _, e := range resolved {
		b.WriteString(src[last:e.start])
		b.WriteString(e.text)
		last = e.end
	}
	b.WriteString(src[last:])
	return b.String(), nil
}

package editor

import (
	"testing"
	"testing/quick"
)

const sample = "line one\nline two\nline three\n"

func TestOffsetToPosition(t *testing.T) {
	cases := []struct {
		offset int
		want   Position
	}{
		{0, Position{0, 0}},
		{4, Position{0, 4}},
		{9, Position{1, 0}},
		{14, Position{1, 5}},
		{18, Position{2, 0}},
		{len(sample), Position{3, 0}},
		{len(sample) + 100, Position{3, 0}}, // clamps
	}
	for _, tc := range cases {
		if got := OffsetToPosition(sample, tc.offset); got != tc.want {
			t.Errorf("OffsetToPosition(%d) = %+v, want %+v", tc.offset, got, tc.want)
		}
	}
}

func TestPositionToOffset(t *testing.T) {
	cases := []struct {
		pos  Position
		want int
	}{
		{Position{0, 0}, 0},
		{Position{1, 0}, 9},
		{Position{1, 5}, 14},
		{Position{0, 999}, 8}, // clamps to line end
		{Position{99, 0}, len(sample)},
	}
	for _, tc := range cases {
		if got := PositionToOffset(sample, tc.pos); got != tc.want {
			t.Errorf("PositionToOffset(%+v) = %d, want %d", tc.pos, got, tc.want)
		}
	}
}

func TestRoundTripOffsets(t *testing.T) {
	f := func(src string, rawOffset uint16) bool {
		offset := int(rawOffset) % (len(src) + 1)
		pos := OffsetToPosition(src, offset)
		back := PositionToOffset(src, pos)
		return back == offset
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestApplyEditsSingle(t *testing.T) {
	src := "app.run(debug=True)\n"
	edit := SpanEdit(src, 8, 18, "debug=False, use_reloader=False")
	got, err := ApplyEdits(src, []TextEdit{edit})
	if err != nil {
		t.Fatal(err)
	}
	want := "app.run(debug=False, use_reloader=False)\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestApplyEditsMultiple(t *testing.T) {
	src := "a = md5(x)\nb = md5(y)\n"
	edits := []TextEdit{
		SpanEdit(src, 4, 7, "sha256"),
		SpanEdit(src, 15, 18, "sha256"),
	}
	got, err := ApplyEdits(src, edits)
	if err != nil {
		t.Fatal(err)
	}
	want := "a = sha256(x)\nb = sha256(y)\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestApplyEditsOutOfOrder(t *testing.T) {
	src := "aaa bbb ccc\n"
	edits := []TextEdit{
		SpanEdit(src, 8, 11, "C"),
		SpanEdit(src, 0, 3, "A"),
	}
	got, err := ApplyEdits(src, edits)
	if err != nil {
		t.Fatal(err)
	}
	if got != "A bbb C\n" {
		t.Errorf("got %q", got)
	}
}

func TestApplyEditsOverlapRejected(t *testing.T) {
	src := "abcdef\n"
	edits := []TextEdit{
		SpanEdit(src, 0, 4, "X"),
		SpanEdit(src, 2, 6, "Y"),
	}
	if _, err := ApplyEdits(src, edits); err == nil {
		t.Error("overlapping edits accepted")
	}
}

func TestApplyEditsInsertion(t *testing.T) {
	src := "def f():\n    pass\n"
	edits := []TextEdit{SpanEdit(src, 0, 0, "import os\n")}
	got, err := ApplyEdits(src, edits)
	if err != nil {
		t.Fatal(err)
	}
	if got != "import os\ndef f():\n    pass\n" {
		t.Errorf("got %q", got)
	}
}

func TestApplyEditsEmpty(t *testing.T) {
	got, err := ApplyEdits(sample, nil)
	if err != nil || got != sample {
		t.Errorf("no-op failed: %q, %v", got, err)
	}
}

// slowOffsetToPosition is the pre-index reference implementation.
func slowOffsetToPosition(src string, offset int) Position {
	if offset > len(src) {
		offset = len(src)
	}
	line, col := 0, 0
	for i := 0; i < offset; i++ {
		if src[i] == '\n' {
			line++
			col = 0
		} else {
			col++
		}
	}
	return Position{Line: line, Character: col}
}

// slowPositionToOffset is the pre-index reference implementation.
func slowPositionToOffset(src string, pos Position) int {
	offset := 0
	for line := 0; line < pos.Line; line++ {
		nl := -1
		for i := offset; i < len(src); i++ {
			if src[i] == '\n' {
				nl = i - offset
				break
			}
		}
		if nl < 0 {
			return len(src)
		}
		offset += nl + 1
	}
	lineEnd := -1
	for i := offset; i < len(src); i++ {
		if src[i] == '\n' {
			lineEnd = i - offset
			break
		}
	}
	if lineEnd < 0 {
		lineEnd = len(src) - offset
	}
	col := pos.Character
	if col > lineEnd {
		col = lineEnd
	}
	return offset + col
}

func TestPosMapperMatchesReference(t *testing.T) {
	srcs := []string{
		"",
		"no newline",
		"\n",
		"a\nbb\nccc",
		"a\nbb\nccc\n",
		"\n\n\n",
		"crlf\r\nlines\r\n",
		sample,
	}
	for _, src := range srcs {
		m := NewPosMapper(src)
		for off := 0; off <= len(src)+2; off++ {
			if got, want := m.OffsetToPosition(off), slowOffsetToPosition(src, off); got != want {
				t.Fatalf("OffsetToPosition(%d) in %q = %+v, want %+v", off, src, got, want)
			}
		}
		for line := 0; line <= len(src)+2; line++ {
			for ch := 0; ch <= len(src)+2; ch++ {
				pos := Position{Line: line, Character: ch}
				if got, want := m.PositionToOffset(pos), slowPositionToOffset(src, pos); got != want {
					t.Fatalf("PositionToOffset(%+v) in %q = %d, want %d", pos, src, got, want)
				}
			}
		}
	}
}

package rulecheck

// Regex health: structural ReDoS hazards in patterns and gates, plus the
// executed worst-case probe. Expression compilation itself cannot fail
// here — the catalog compiles patterns with MustCompile at build — but
// custom catalogs assembled via rules.NewCustom flow through the same
// checks, and the syntax re-parse in analyzeRedos tolerates anything.

func (ck *checker) checkRegex() {
	for i, r := range ck.rs {
		exprs := []struct{ label, expr string }{
			{"pattern", r.Pattern.String()},
		}
		if r.Requires != nil {
			exprs = append(exprs, struct{ label, expr string }{"requires gate", r.Requires.String()})
		}
		if r.Excludes != nil {
			exprs = append(exprs, struct{ label, expr string }{"excludes gate", r.Excludes.String()})
		}
		for _, e := range exprs {
			for _, f := range analyzeRedos(e.expr) {
				switch f.kind {
				case "nested-quantifier":
					ck.add(SeverityError, "redos-nested", i, "%s: %s", e.label, f.detail)
				case "overlapping-alternation":
					ck.add(SeverityWarning, "redos-ambiguous-alt", i, "%s: %s", e.label, f.detail)
				case "dotstar-prefix":
					ck.add(SeverityWarning, "redos-dotstar", i, "%s: %s", e.label, f.detail)
				}
			}
		}

		if elapsed, ok := probeWorstCase(r.Pattern, r.Pattern.String(), ck.wits[i]); !ok {
			// The message deliberately omits the measured duration so vet
			// output stays byte-stable across runs; elapsed goes to metrics.
			_ = elapsed
			ck.add(SeverityError, "redos-probe", i,
				"pattern exceeded the %v worst-case budget on a %d-byte adversarial input", probeBudget, probeSize)
		}
	}
}

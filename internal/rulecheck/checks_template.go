package rulecheck

import (
	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/patch"
)

// Patch-template soundness. Static part: a template must not reference a
// capture group its pattern does not define (Expand silently substitutes
// the empty string, corrupting the patched source). Dynamic part: for
// each fix-bearing rule, run the real detect → patch → re-detect loop on
// the rule's witness. The patched source must no longer trigger the rule
// (convergence) and must not trigger rules the original did not
// (no-introduction); violations are exactly the fixpoint failures the
// paper's repair-rate methodology assumes cannot happen.

func (ck *checker) checkTemplates() {
	for i, r := range ck.rs {
		if !r.HasFix() {
			continue
		}

		if refs := patch.GroupRefs(r.Fix.Replace); len(refs) > 0 {
			max := 0
			for _, n := range refs {
				if n > max {
					max = n
				}
			}
			if max > r.Pattern.NumSubexp() {
				ck.add(SeverityError, "template-bad-group", i,
					"fix template references group $%d but the pattern captures only %d group(s)", max, r.Pattern.NumSubexp())
				continue
			}
		}

		wit := ck.wits[i]
		if !wit.ok {
			continue // witness-failure already reported by checkPrefilter
		}

		noCache := detect.Options{NoCache: true}
		before := ck.det.ScanWith(wit.full, noCache)
		own := ck.det.ScanWith(wit.full, detect.Options{RuleIDs: []string{r.ID}, NoCache: true})
		if len(own) == 0 {
			ck.add(SeverityWarning, "template-unexercised", i,
				"rule does not fire on its own witness %q (gate or comment-mask interaction); fixpoint check skipped", truncate(wit.full, 80))
			continue
		}

		res := patch.Apply(wit.full, own)
		if len(res.Applied) == 0 {
			ck.add(SeverityError, "template-unapplied", i,
				"patch engine applied no fix to the rule's own finding on witness %q", truncate(wit.full, 80))
			continue
		}

		after := ck.det.ScanWith(res.Source, noCache)
		beforeIDs := idSet(before)
		for _, f := range after {
			if f.Rule.ID == r.ID {
				ck.add(SeverityError, "template-nonconvergent", i,
					"fix applied to witness %q still matches the rule (patch loop would not terminate)", truncate(wit.full, 80))
				break
			}
		}
		seen := map[string]bool{}
		for _, f := range after {
			if f.Rule.ID == r.ID || beforeIDs[f.Rule.ID] || seen[f.Rule.ID] {
				continue
			}
			seen[f.Rule.ID] = true
			ck.add(SeverityError, "template-introduces", i,
				"fix applied to witness introduces a new finding for %s", f.Rule.ID)
		}
	}
}

func idSet(fs []detect.Finding) map[string]bool {
	out := make(map[string]bool, len(fs))
	for _, f := range fs {
		out[f.Rule.ID] = true
	}
	return out
}

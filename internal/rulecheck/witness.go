package rulecheck

import (
	"regexp/syntax"
	"strings"

	"github.com/dessertlab/patchitpy/internal/rules"
)

// Witness synthesis: for each rule, derive a minimal source string its
// Pattern matches (and, when the rule carries gates, that its Requires
// gate admits and its Excludes gate does not reject). Witnesses drive the
// differential checks — prefilter soundness, inter-rule shadowing and
// patch-template convergence all execute the real engines on them.

// maxWitnessCandidates caps how many alternative strings synthesis
// explores per expression; alternation-heavy patterns would otherwise
// explode combinatorially.
const maxWitnessCandidates = 16

// witness is one rule's synthesized evidence.
type witness struct {
	// full is the source string handed to the engines: the pattern match
	// plus, when needed, a preceding line satisfying the Requires gate.
	full string
	// body is the substring matching the rule's Pattern alone.
	body string
	// ok reports whether synthesis succeeded; reason explains a failure.
	ok     bool
	reason string
}

// SynthesizeWitness derives a minimal source string that rule r should
// fire on: its Pattern matches, its Requires gate (if any) admits it and
// its Excludes gate (if any) does not reject it. ok is false when no such
// string could be built from the rule's expressions. Property tests in
// other packages use this to exercise the real engines against every
// catalog rule without hand-writing 85 vulnerable snippets.
func SynthesizeWitness(r *rules.Rule) (src string, ok bool) {
	w := synthesize(r)
	return w.full, w.ok
}

// synthesize derives a witness for r, trying pattern candidates (and, when
// the pattern alone does not satisfy a Requires gate, pattern × requires
// combinations) until one passes all three gates.
func synthesize(r *rules.Rule) witness {
	bodies, err := expressionWitnesses(r.Pattern.String())
	if err != nil {
		return witness{reason: "pattern does not parse: " + err.Error()}
	}
	var matched []string
	for _, b := range bodies {
		if r.Pattern.MatchString(b) {
			matched = append(matched, b)
		}
	}
	if len(matched) == 0 {
		return witness{reason: "no synthesized candidate matches the pattern"}
	}

	var gates []string
	if r.Requires != nil {
		gates, err = expressionWitnesses(r.Requires.String())
		if err != nil {
			return witness{reason: "requires gate does not parse: " + err.Error()}
		}
	}

	for _, body := range matched {
		for _, full := range gatedCandidates(r, body, gates) {
			if r.Pattern.MatchString(full) &&
				(r.Requires == nil || r.Requires.MatchString(full)) &&
				(r.Excludes == nil || !r.Excludes.MatchString(full)) {
				return witness{full: full, body: body, ok: true}
			}
		}
	}
	return witness{reason: "every candidate is rejected by the rule's own gates"}
}

// gatedCandidates returns the full-source candidates for one pattern
// body: the body alone when it already satisfies the Requires gate,
// otherwise the body preceded by each requires-gate witness line.
func gatedCandidates(r *rules.Rule, body string, gates []string) []string {
	if r.Requires == nil || r.Requires.MatchString(body) {
		return []string{body}
	}
	out := make([]string, 0, len(gates))
	for _, g := range gates {
		out = append(out, g+"\n"+body)
	}
	return out
}

// expressionWitnesses parses expr and returns up to maxWitnessCandidates
// strings the expression should match, built by choosing alternation
// branches in order and taking minimal repetitions.
func expressionWitnesses(expr string) ([]string, error) {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil, err
	}
	return nodeWitnesses(re), nil
}

// nodeWitnesses generates candidate strings for one parsed node.
func nodeWitnesses(re *syntax.Regexp) []string {
	switch re.Op {
	case syntax.OpLiteral:
		return []string{string(re.Rune)}
	case syntax.OpCharClass:
		return []string{string(classRune(re))}
	case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
		return []string{"a"}
	case syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText, syntax.OpEndText,
		syntax.OpWordBoundary, syntax.OpNoWordBoundary, syntax.OpEmptyMatch:
		return []string{""}
	case syntax.OpCapture:
		return nodeWitnesses(re.Sub[0])
	case syntax.OpStar, syntax.OpQuest:
		// Zero repetitions always suffice for a match.
		return []string{""}
	case syntax.OpPlus:
		return nodeWitnesses(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min == 0 {
			return []string{""}
		}
		subs := nodeWitnesses(re.Sub[0])
		out := make([]string, 0, len(subs))
		for _, s := range subs {
			out = append(out, strings.Repeat(s, re.Min))
		}
		return out
	case syntax.OpConcat:
		parts := [][]string{}
		for _, sub := range re.Sub {
			parts = append(parts, nodeWitnesses(sub))
		}
		return crossProduct(parts)
	case syntax.OpAlternate:
		var out []string
		for _, sub := range re.Sub {
			out = append(out, nodeWitnesses(sub)...)
			if len(out) >= maxWitnessCandidates {
				return out[:maxWitnessCandidates]
			}
		}
		return out
	default:
		// OpNoMatch and anything unanticipated: no witness.
		return nil
	}
}

// classRune picks a representative rune from a character class, preferring
// runes that keep witnesses looking like source code: lowercase letters,
// then digits, then uppercase, then any printable ASCII, then whatever
// the class admits first.
func classRune(re *syntax.Regexp) rune {
	type band struct{ lo, hi rune }
	for _, pref := range []band{{'a', 'z'}, {'0', '9'}, {'A', 'Z'}, {'!', '~'}, {' ', ' '}} {
		for i := 0; i+1 < len(re.Rune); i += 2 {
			lo, hi := re.Rune[i], re.Rune[i+1]
			if hi < pref.lo || lo > pref.hi {
				continue
			}
			if lo < pref.lo {
				lo = pref.lo
			}
			return lo
		}
	}
	if len(re.Rune) > 0 {
		return re.Rune[0]
	}
	return 'a'
}

// crossProduct combines per-part candidate lists into whole-string
// candidates, capped at maxWitnessCandidates. The first candidate always
// concatenates each part's first choice; later candidates vary one part
// at a time so alternation-heavy patterns still yield diverse witnesses.
func crossProduct(parts [][]string) []string {
	first := make([]string, len(parts))
	for i, p := range parts {
		if len(p) == 0 {
			return nil
		}
		first[i] = p[0]
	}
	out := []string{strings.Join(first, "")}
	for i, p := range parts {
		for _, alt := range p[1:] {
			variant := make([]string, len(parts))
			copy(variant, first)
			variant[i] = alt
			out = append(out, strings.Join(variant, ""))
			if len(out) >= maxWitnessCandidates {
				return out
			}
		}
	}
	return out
}

package rulecheck

import (
	"strings"

	"github.com/dessertlab/patchitpy/internal/detect"
)

// Prefilter coverage: every rule should ideally contribute a
// mandatory-literal set to the scan automaton (a rule with none runs its
// regexes on every source), and the set the extractor produces must be
// sound — a source matching the rule must always be admitted by the
// automaton. Soundness is checked by executing the real automaton on the
// rule's synthesized witness, not by re-deriving the literal logic.

func (ck *checker) checkPrefilter() {
	for i, r := range ck.rs {
		ls := detect.PrefilterLiterals(r)
		if !ls.Prefilterable() {
			ck.add(SeverityWarning, "prefilter-empty", i,
				"no mandatory literal could be extracted from pattern or gate (rule runs on every source; usually caused by case-folded or too-short literals)")
		}

		wit := ck.wits[i]
		if !wit.ok {
			ck.add(SeverityWarning, "witness-failure", i,
				"could not synthesize a matching witness: %s (differential checks skipped for this rule)", wit.reason)
			continue
		}
		if !containsID(ck.det.Candidates(wit.full), r.ID) {
			ck.add(SeverityError, "prefilter-unsound", i,
				"the literal automaton does not admit the rule on its own witness %q — the prefilter would skip a real match", truncate(wit.full, 80))
		}
	}
}

func containsID(ids []string, id string) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// truncate shortens s for display inside one-line messages.
func truncate(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", `\n`)
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

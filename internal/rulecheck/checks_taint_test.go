package rulecheck

import (
	"testing"

	"github.com/dessertlab/patchitpy/internal/rules"
	"github.com/dessertlab/patchitpy/internal/taint"
)

// The shipped catalog's flow gates and the default taint spec must vet
// clean — this is the acceptance bar for the taint layer.
func TestShippedTaintGatesClean(t *testing.T) {
	rep := Check(rules.NewCatalog())
	for _, is := range rep.Issues {
		switch is.Check {
		case "taint-gate-kind", "taint-gate-arg", "taint-spec-source", "taint-spec-sink", "taint-spec-sanitizer":
			t.Errorf("shipped catalog taint issue: [%s] %s", is.Check, is.Message)
		}
	}
}

func TestSeededGateUnknownKind(t *testing.T) {
	r := seedRule("PIP-TST-001", `os\.system\(`)
	r.FlowGate = &rules.FlowGate{Sink: "network", Arg: 0}
	got := issuesFor(t, "taint-gate-kind", r)
	if len(got) != 1 {
		t.Fatalf("taint-gate-kind fired %d times on unknown sink kind, want 1", len(got))
	}
	if got[0].Severity != SeverityError {
		t.Errorf("taint-gate-kind severity = %v, want ERROR", got[0].Severity)
	}
}

func TestSeededGateUnclassifiedArg(t *testing.T) {
	r := seedRule("PIP-TST-001", `os\.system\(`)
	r.FlowGate = &rules.FlowGate{Sink: taint.SinkExec, Arg: 7}
	if got := issuesFor(t, "taint-gate-arg", r); len(got) != 1 {
		t.Fatalf("taint-gate-arg fired %d times on unclassified argument, want 1", len(got))
	}

	neg := seedRule("PIP-TST-002", `os\.system\(`)
	neg.FlowGate = &rules.FlowGate{Sink: taint.SinkExec, Arg: -1}
	if got := issuesFor(t, "taint-gate-arg", neg); len(got) != 1 {
		t.Fatal("taint-gate-arg did not fire on a negative argument index")
	}

	// A gate the spec classifies is clean.
	ok := seedRule("PIP-TST-003", `os\.system\(`)
	ok.FlowGate = &rules.FlowGate{Sink: taint.SinkExec, Arg: 0}
	if got := issuesFor(t, "taint-gate-arg", ok); len(got) != 0 {
		t.Errorf("taint-gate-arg false positive on a valid gate: %v", got)
	}
}

// The spec-table checks run against the default spec via Check; exercise
// the validators directly on a deliberately broken spec.
func TestSeededBrokenSpecTable(t *testing.T) {
	ck := &checker{}
	ck.checkTaintSpec(&taint.Spec{
		Sources: []taint.SourceSpec{
			{Pattern: "bad..path", Mode: taint.ModeCall},
			{Pattern: "x", Mode: "bogus"},
		},
		Sinks: []taint.SinkSpec{
			{Kind: "", Callee: "os.system", Args: []int{0}},
			{Kind: taint.SinkExec, Callee: "mid.*.wild", Args: []int{0}},
			{Kind: taint.SinkExec, Callee: "os.system"},
			{Kind: taint.SinkExec, Callee: "os.popen", Args: []int{-2}},
			{Kind: taint.SinkSQL, Callee: "*.execute", Args: []int{0}},
			{Kind: taint.SinkSQL, Callee: "*.execute", Args: []int{0}},
		},
		Sanitizers: []taint.SanitizerSpec{
			{Callee: "1bad", Mode: taint.SanCall, Arity: 1},
			{Callee: "shlex.quote", Mode: taint.SanCall, Arity: 0},
			{Mode: taint.SanParamstyle, AppliesTo: "nosuch"},
			{Callee: "x", Mode: "strange"},
		},
	})
	counts := map[string]int{}
	for _, is := range ck.issues {
		counts[is.Check]++
	}
	if counts["taint-spec-source"] != 2 {
		t.Errorf("taint-spec-source = %d, want 2: %+v", counts["taint-spec-source"], ck.issues)
	}
	if counts["taint-spec-sink"] != 5 {
		t.Errorf("taint-spec-sink = %d, want 5 (empty kind, wildcard-mid, no args, negative arg, duplicate): %+v",
			counts["taint-spec-sink"], ck.issues)
	}
	if counts["taint-spec-sanitizer"] != 4 {
		t.Errorf("taint-spec-sanitizer = %d, want 4: %+v", counts["taint-spec-sanitizer"], ck.issues)
	}
}

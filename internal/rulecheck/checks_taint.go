package rulecheck

import (
	"github.com/dessertlab/patchitpy/internal/taint"
)

// checkTaint vets the flow-gate layer: every rule FlowGate must reference
// a sink kind and argument index the taint spec table actually classifies
// (a dangling gate would make the precision filter a silent no-op for that
// rule), and the spec table itself must be well-formed — malformed path
// patterns or empty argument lists never match and would likewise rot
// silently.
func (ck *checker) checkTaint() {
	spec := taint.DefaultSpec()
	kinds := spec.SinkKinds()

	// argsByKind collects, per sink kind, the set of argument indices some
	// sink spec classifies — the vocabulary a FlowGate's Arg may use.
	argsByKind := make(map[string]map[int]bool)
	for _, sk := range spec.Sinks {
		if argsByKind[sk.Kind] == nil {
			argsByKind[sk.Kind] = make(map[int]bool)
		}
		for _, a := range sk.Args {
			argsByKind[sk.Kind][a] = true
		}
	}

	for i, r := range ck.rs {
		g := r.FlowGate
		if g == nil {
			continue
		}
		if !kinds[g.Sink] {
			ck.add(SeverityError, "taint-gate-kind", i,
				"flow gate references unknown sink kind %q (spec kinds: %s)", g.Sink, kindList(kinds))
			continue
		}
		if g.Arg < 0 {
			ck.add(SeverityError, "taint-gate-arg", i, "flow gate argument index %d is negative", g.Arg)
			continue
		}
		if !argsByKind[g.Sink][g.Arg] {
			ck.add(SeverityError, "taint-gate-arg", i,
				"flow gate argument %d is classified by no %q sink spec: the filter can never suppress this rule", g.Arg, g.Sink)
		}
	}

	ck.checkTaintSpec(spec)
}

// checkTaintSpec validates the declarative source/sink/sanitizer table
// itself; issues are catalog-level (RuleIndex 0).
func (ck *checker) checkTaintSpec(spec *taint.Spec) {
	for _, src := range spec.Sources {
		switch src.Mode {
		case taint.ModeCall, taint.ModeObject:
			if !taint.ValidPathPattern(src.Pattern) {
				ck.add(SeverityError, "taint-spec-source", -1,
					"source spec %q: malformed path pattern", src.Pattern)
			}
		case taint.ModeParam:
			if src.Pattern != "" {
				ck.add(SeverityWarning, "taint-spec-source", -1,
					"param source spec carries pattern %q, which is ignored", src.Pattern)
			}
		default:
			ck.add(SeverityError, "taint-spec-source", -1,
				"source spec %q: unknown mode %q", src.Pattern, src.Mode)
		}
	}

	seen := make(map[string]bool)
	for _, sk := range spec.Sinks {
		if sk.Kind == "" {
			ck.add(SeverityError, "taint-spec-sink", -1, "sink spec %q: empty kind", sk.Callee)
		}
		if !taint.ValidPathPattern(sk.Callee) {
			ck.add(SeverityError, "taint-spec-sink", -1, "sink spec %q: malformed callee pattern", sk.Callee)
		}
		if len(sk.Args) == 0 {
			ck.add(SeverityError, "taint-spec-sink", -1,
				"sink spec %q: no classified argument indices", sk.Callee)
		}
		for _, a := range sk.Args {
			if a < 0 {
				ck.add(SeverityError, "taint-spec-sink", -1,
					"sink spec %q: negative argument index %d", sk.Callee, a)
			}
		}
		key := sk.Kind + "\x00" + sk.Callee
		if seen[key] {
			ck.add(SeverityWarning, "taint-spec-sink", -1,
				"sink spec %q: duplicate entry for kind %q", sk.Callee, sk.Kind)
		}
		seen[key] = true
	}

	kinds := spec.SinkKinds()
	for _, sz := range spec.Sanitizers {
		switch sz.Mode {
		case taint.SanCall:
			if !taint.ValidPathPattern(sz.Callee) {
				ck.add(SeverityError, "taint-spec-sanitizer", -1,
					"sanitizer spec %q: malformed callee pattern", sz.Callee)
			}
			if sz.Arity < 1 {
				ck.add(SeverityError, "taint-spec-sanitizer", -1,
					"sanitizer spec %q: arity %d, want >= 1", sz.Callee, sz.Arity)
			}
		case taint.SanParamstyle:
			if !kinds[sz.AppliesTo] {
				ck.add(SeverityError, "taint-spec-sanitizer", -1,
					"paramstyle sanitizer applies to unknown sink kind %q", sz.AppliesTo)
			}
		default:
			ck.add(SeverityError, "taint-spec-sanitizer", -1,
				"sanitizer spec %q: unknown mode %q", sz.Callee, sz.Mode)
		}
	}
}

// kindList renders a kind set deterministically for messages.
func kindList(kinds map[string]bool) string {
	known := []string{taint.SinkExec, taint.SinkSQL, taint.SinkPath, taint.SinkEval, taint.SinkDe}
	out := ""
	for _, k := range known {
		if kinds[k] {
			if out != "" {
				out += ", "
			}
			out += k
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

package rulecheck

import (
	"regexp"
	"regexp/syntax"
	"testing"
)

func mustRe(expr string) *regexp.Regexp { return regexp.MustCompile(expr) }

func kinds(fs []redosFinding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.kind]++
	}
	return out
}

func TestAnalyzeRedosNested(t *testing.T) {
	for _, expr := range []string{
		`(?:a+)+b`,    // the textbook case
		`(a*)*$`,      // nullable body
		`(?:\w+\s?)*`, // nullable tail inside the body
		`(?:a|a+b)+`,  // unbounded quantifier at a branch edge
	} {
		if kinds(analyzeRedos(expr))["nested-quantifier"] == 0 {
			t.Errorf("nested-quantifier missed on %q", expr)
		}
	}
}

func TestAnalyzeRedosGuardedNestingClean(t *testing.T) {
	for _, expr := range []string{
		// PIP-CFG-005's shape: the inner star is fenced by literal parens.
		`\.set_cookie\(((?:[^()\n]|\([^()\n]*\))*)\)`,
		`(?:ab)+`,
		`\w+\s*=\s*\d+`,
		`(?:"[^"]*")+`,
	} {
		if n := kinds(analyzeRedos(expr))["nested-quantifier"]; n != 0 {
			t.Errorf("nested-quantifier false positive (%d) on %q", n, expr)
		}
	}
}

func TestAnalyzeRedosOverlappingAlternation(t *testing.T) {
	if kinds(analyzeRedos(`(?:a|ab)+x`))["overlapping-alternation"] == 0 {
		t.Error("overlapping-alternation missed on (?:a|ab)+x")
	}
	if n := kinds(analyzeRedos(`(?:a|b)+x`))["overlapping-alternation"]; n != 0 {
		t.Errorf("overlapping-alternation false positive on disjoint branches (%d)", n)
	}
}

func TestAnalyzeRedosDotStarPrefix(t *testing.T) {
	if kinds(analyzeRedos(`.*password`))["dotstar-prefix"] == 0 {
		t.Error("dotstar-prefix missed on .*password")
	}
	for _, clean := range []string{`password.*`, `^\s*eval\(`} {
		if n := kinds(analyzeRedos(clean))["dotstar-prefix"]; n != 0 {
			t.Errorf("dotstar-prefix false positive on %q", clean)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		`a*`:       true,
		`a?b?`:     true,
		`a`:        false,
		`a+`:       false,
		`(?:a|b*)`: true,
		`a{0,3}`:   true,
		`a{2,}`:    false,
	}
	for expr, want := range cases {
		re, err := syntax.Parse(expr, syntax.Perl)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if got := nullable(re); got != want {
			t.Errorf("nullable(%q) = %t, want %t", expr, got, want)
		}
	}
}

func TestProbeWorstCaseWithinBudget(t *testing.T) {
	re := mustRe(`(?m)eval\(\s*request`)
	if _, ok := probeWorstCase(re, re.String(), witness{ok: true, body: "eval(request"}); !ok {
		t.Error("benign pattern exceeded the probe budget")
	}
}

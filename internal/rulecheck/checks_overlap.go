package rulecheck

import (
	"regexp/syntax"
	"strings"

	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/rules"
)

// Inter-rule overlap and shadowing. Two complementary views:
//
//   - Structural: rules sharing an identical Pattern are duplicates
//     (an error when the gates coincide too — the rules are then
//     behaviourally indistinguishable and one of them is dead weight in
//     every severity/category filter); alternations where an earlier
//     branch is a proper prefix of a later one shadow the longer branch
//     under Go's leftmost-first semantics.
//
//   - Differential: each rule's witness is scanned with the full catalog;
//     another rule firing on an overlapping span is empirical overlap the
//     structural view cannot prove or disprove.

func (ck *checker) checkOverlap() {
	byPattern := map[string][]int{}
	for i, r := range ck.rs {
		byPattern[r.Pattern.String()] = append(byPattern[r.Pattern.String()], i)
	}
	for _, group := range byPattern {
		if len(group) < 2 {
			continue
		}
		for _, j := range group[1:] {
			i := group[0]
			if gateKey(ck.rs[i]) == gateKey(ck.rs[j]) {
				ck.add(SeverityError, "duplicate-rule", j,
					"identical pattern AND gates as %s — the rules are behaviourally indistinguishable", ck.rs[i].ID)
			} else {
				ck.add(SeverityInfo, "duplicate-pattern", j,
					"shares its exact pattern with %s (distinguished only by gates — intentional tiering, but keep the gates disjoint)", ck.rs[i].ID)
			}
		}
	}

	for i, r := range ck.rs {
		if shadowed := shadowedBranch(r.Pattern.String()); shadowed != "" {
			ck.add(SeverityInfo, "alt-shadowed", i,
				"pattern alternation branch %q can never win: an earlier branch matches a prefix of it (leftmost-first semantics)", shadowed)
		}
	}

	// Differential pass: scan each witness with the whole catalog and
	// report other rules firing on a span overlapping the witness body.
	for i, wit := range ck.wits {
		if !wit.ok {
			continue
		}
		body := strings.Index(wit.full, wit.body)
		if body < 0 {
			continue
		}
		for _, f := range ck.det.ScanWith(wit.full, detect.Options{NoCache: true}) {
			if f.Rule.ID == ck.rs[i].ID {
				continue
			}
			if f.Start < body+len(wit.body) && f.End > body {
				ck.add(SeverityInfo, "overlap", i,
					"witness also triggers %s on an overlapping span (expect double findings on sources matching both)", f.Rule.ID)
			}
		}
	}
}

// gateKey canonicalizes a rule's gating for duplicate detection.
func gateKey(r *rules.Rule) string {
	var b strings.Builder
	if r.Requires != nil {
		b.WriteString(r.Requires.String())
	}
	b.WriteByte(0)
	if r.Excludes != nil {
		b.WriteString(r.Excludes.String())
	}
	return b.String()
}

// shadowedBranch returns the string form of the first alternation branch
// that is unreachable because an earlier sibling matches a prefix of
// every string it matches, or "" when none is. The claim is only sound
// when the alternation is in tail position: any trailing element — even
// a `\b` assertion — can fail after the short branch and thereby rescue
// the longer one under leftmost-first semantics, so alternations with a
// suffix are never reported.
func shadowedBranch(expr string) string {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return ""
	}
	return findShadowed(re, true)
}

func findShadowed(re *syntax.Regexp, tail bool) string {
	if re.Op == syntax.OpAlternate && tail {
		for i, early := range re.Sub {
			// A nullable branch wins instantly at any position, so every
			// later branch is dead when the alternation ends the pattern —
			// the shape syntax.Parse's prefix factoring produces from
			// `foo|foo_bar` (→ `foo(?:(?:)|_bar)`).
			if early.Op == syntax.OpEmptyMatch && i+1 < len(re.Sub) {
				return re.Sub[i+1].String()
			}
			if early.Op != syntax.OpLiteral || early.Flags&syntax.FoldCase != 0 {
				continue
			}
			prefix := string(early.Rune)
			for _, late := range re.Sub[i+1:] {
				if late.Op == syntax.OpLiteral && late.Flags&syntax.FoldCase == 0 &&
					strings.HasPrefix(string(late.Rune), prefix) {
					return late.String()
				}
			}
		}
	}
	switch re.Op {
	case syntax.OpCapture, syntax.OpAlternate:
		for _, sub := range re.Sub {
			if s := findShadowed(sub, tail); s != "" {
				return s
			}
		}
	case syntax.OpConcat:
		for i, sub := range re.Sub {
			if s := findShadowed(sub, tail && i == len(re.Sub)-1); s != "" {
				return s
			}
		}
	default:
		// Quantified bodies are never in tail position: a further
		// iteration attempt follows every iteration.
		for _, sub := range re.Sub {
			if s := findShadowed(sub, false); s != "" {
				return s
			}
		}
	}
	return ""
}

package rulecheck

import "github.com/dessertlab/patchitpy/internal/rules"

// Curated CWE knowledge for metadata vetting. Two tables:
//
//   - cweNames: every CWE identifier the catalog is allowed to reference,
//     with its canonical short name. A rule citing a CWE outside this
//     table is an error — either the identifier is a typo or the table
//     needs a deliberate, reviewed addition.
//
//   - cweCategories: the OWASP Top 10:2021 categories each CWE may map
//     to. The sets follow the official OWASP CWE mappings but stay
//     deliberately lenient where the official assignment is contested in
//     practice (e.g. CWE-295 is officially A07 yet near-universally filed
//     under A02 by scanners), so the mismatch check flags genuine
//     mis-filings — XXE under Integrity Failures — without warring over
//     judgment calls.

var cweNames = map[string]string{
	"CWE-022": "Path Traversal",
	"CWE-078": "OS Command Injection",
	"CWE-079": "Cross-site Scripting",
	"CWE-089": "SQL Injection",
	"CWE-094": "Code Injection",
	"CWE-095": "Eval Injection",
	"CWE-208": "Observable Timing Discrepancy",
	"CWE-209": "Error Message Information Exposure",
	"CWE-256": "Plaintext Storage of a Password",
	"CWE-259": "Hard-coded Password",
	"CWE-295": "Improper Certificate Validation",
	"CWE-306": "Missing Authentication for Critical Function",
	"CWE-326": "Inadequate Encryption Strength",
	"CWE-327": "Broken or Risky Cryptographic Algorithm",
	"CWE-330": "Insufficiently Random Values",
	"CWE-347": "Improper Verification of Cryptographic Signature",
	"CWE-377": "Insecure Temporary File",
	"CWE-400": "Uncontrolled Resource Consumption",
	"CWE-434": "Unrestricted Upload of Dangerous File Type",
	"CWE-489": "Active Debug Code",
	"CWE-494": "Download of Code Without Integrity Check",
	"CWE-502": "Deserialization of Untrusted Data",
	"CWE-522": "Insufficiently Protected Credentials",
	"CWE-605": "Multiple Binds to the Same Port",
	"CWE-611": "XML External Entity Reference",
	"CWE-614": "Sensitive Cookie Without Secure Attribute",
	"CWE-703": "Improper Check of Exceptional Conditions",
	"CWE-732": "Incorrect Permission Assignment",
	"CWE-798": "Hard-coded Credentials",
	"CWE-916": "Password Hash With Insufficient Effort",
	"CWE-918": "Server-Side Request Forgery",
	"CWE-942": "Permissive Cross-domain Policy",
}

var cweCategories = map[string][]rules.Category{
	"CWE-022": {rules.BrokenAccessControl},
	"CWE-078": {rules.Injection},
	"CWE-079": {rules.Injection},
	"CWE-089": {rules.Injection},
	"CWE-094": {rules.Injection},
	"CWE-095": {rules.Injection},
	"CWE-208": {rules.CryptographicFailures},
	"CWE-209": {rules.InsecureDesign, rules.LoggingFailures},
	"CWE-256": {rules.InsecureDesign, rules.AuthFailures, rules.CryptographicFailures},
	"CWE-259": {rules.AuthFailures},
	"CWE-295": {rules.AuthFailures, rules.CryptographicFailures},
	"CWE-306": {rules.AuthFailures},
	"CWE-326": {rules.CryptographicFailures},
	"CWE-327": {rules.CryptographicFailures},
	"CWE-330": {rules.CryptographicFailures},
	"CWE-347": {rules.CryptographicFailures, rules.IntegrityFailures},
	"CWE-377": {rules.BrokenAccessControl, rules.SecurityMisconfiguration},
	"CWE-400": {rules.InsecureDesign, rules.SecurityMisconfiguration},
	"CWE-434": {rules.InsecureDesign, rules.BrokenAccessControl},
	"CWE-489": {rules.SecurityMisconfiguration},
	"CWE-494": {rules.IntegrityFailures},
	"CWE-502": {rules.IntegrityFailures},
	"CWE-522": {rules.InsecureDesign, rules.AuthFailures, rules.CryptographicFailures},
	"CWE-605": {rules.SecurityMisconfiguration},
	"CWE-611": {rules.SecurityMisconfiguration},
	"CWE-614": {rules.SecurityMisconfiguration},
	"CWE-703": {rules.InsecureDesign, rules.AuthFailures, rules.LoggingFailures},
	"CWE-732": {rules.SecurityMisconfiguration, rules.BrokenAccessControl},
	"CWE-798": {rules.AuthFailures},
	"CWE-916": {rules.CryptographicFailures},
	"CWE-918": {rules.SSRF},
	"CWE-942": {rules.SecurityMisconfiguration},
}

// categoryAllowed reports whether cat is an accepted OWASP mapping for cwe.
func categoryAllowed(cwe string, cat rules.Category) bool {
	for _, c := range cweCategories[cwe] {
		if c == cat {
			return true
		}
	}
	return false
}

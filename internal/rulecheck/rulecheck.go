// Package rulecheck statically vets the rule catalog itself: the 85
// detection rules and their patch templates are the artifact the whole
// pipeline rests on, and this package is the analyzer that treats them —
// not the scanned corpus — as the program under analysis.
//
// Six check families run over a catalog (see DESIGN.md "Rule vetting"):
// regex health (ReDoS heuristics plus a bounded worst-case probe),
// prefilter coverage (introspecting the same literal extraction the scan
// automaton builds), metadata integrity (CWE/OWASP tables, duplicate
// IDs, fingerprint stability), inter-rule overlap (literal subsumption
// and differential execution on synthesized witnesses), patch-template
// soundness (a fix applied to a rule's witness must converge under
// re-scan), and taint-gate coherence (rule flow gates must reference
// sink kinds and argument indices the taint spec table classifies, and
// the spec table itself must be well-formed). Issues carry an
// Error/Warning/Info severity; `patchitpy vet` exits non-zero on any
// Error, which gates CI.
package rulecheck

import (
	"fmt"
	"sort"

	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/rules"
)

// Severity ranks an issue. Errors fail `patchitpy vet`; warnings and
// infos are advisory.
type Severity int

// Issue severities, ordered.
const (
	SeverityInfo Severity = iota + 1
	SeverityWarning
	SeverityError
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "INFO"
	case SeverityWarning:
		return "WARNING"
	case SeverityError:
		return "ERROR"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Issue is one vetting finding about the catalog.
type Issue struct {
	// Check names the check that fired, e.g. "redos-nested".
	Check string
	// Severity is the issue's rank.
	Severity Severity
	// RuleID identifies the offending rule; empty for catalog-level
	// issues (duplicate IDs, fingerprint instability).
	RuleID string
	// RuleIndex is the 1-based position of the rule in the sorted
	// catalog, or 0 for catalog-level issues. It gives emitters a stable
	// "line number" for the catalog-as-file rendering.
	RuleIndex int
	// Message is the human-readable explanation.
	Message string
}

// Report is the outcome of vetting one catalog.
type Report struct {
	// RuleCount is the number of rules vetted.
	RuleCount int
	// Fingerprint is the catalog fingerprint the report describes.
	Fingerprint string
	// Issues holds every finding, sorted by (RuleIndex, Check, Message).
	Issues []Issue
}

// Errors counts error-severity issues.
func (r *Report) Errors() int { return r.count(SeverityError) }

// Warnings counts warning-severity issues.
func (r *Report) Warnings() int { return r.count(SeverityWarning) }

// Infos counts info-severity issues.
func (r *Report) Infos() int { return r.count(SeverityInfo) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, is := range r.Issues {
		if is.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether the catalog fails vetting.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// checker carries the shared state of one vetting run.
type checker struct {
	catalog *rules.Catalog
	rs      []*rules.Rule
	det     *detect.Detector
	wits    []witness // aligned with rs
	issues  []Issue
}

// Check vets the catalog and returns the full report. The run is
// deterministic: the same catalog always yields byte-identical issues in
// the same order.
func Check(c *rules.Catalog) *Report {
	ck := &checker{
		catalog: c,
		rs:      c.Rules(),
		det:     detect.New(c),
	}
	ck.wits = make([]witness, len(ck.rs))
	for i, r := range ck.rs {
		ck.wits[i] = synthesize(r)
	}

	ck.checkMeta()
	ck.checkRegex()
	ck.checkPrefilter()
	ck.checkOverlap()
	ck.checkTemplates()
	ck.checkTaint()

	sort.SliceStable(ck.issues, func(i, j int) bool {
		a, b := ck.issues[i], ck.issues[j]
		if a.RuleIndex != b.RuleIndex {
			return a.RuleIndex < b.RuleIndex
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return &Report{
		RuleCount:   c.Len(),
		Fingerprint: c.Fingerprint(),
		Issues:      ck.issues,
	}
}

// add records an issue against rule index i (0-based position in ck.rs),
// or against the catalog when i < 0.
func (ck *checker) add(sev Severity, check string, i int, format string, args ...any) {
	is := Issue{Check: check, Severity: sev, Message: fmt.Sprintf(format, args...)}
	if i >= 0 {
		is.RuleID = ck.rs[i].ID
		is.RuleIndex = i + 1
		is.Message = is.RuleID + ": " + is.Message
	}
	ck.issues = append(ck.issues, is)
}

package rulecheck

import (
	"context"

	"github.com/dessertlab/patchitpy/internal/diag"
	"github.com/dessertlab/patchitpy/internal/rules"
)

// Bridge into the unified diagnostics model: vetting issues become
// canonical diag.Findings so the existing text/JSONL/SARIF emitters
// render vet output with zero new emitter code. The mapping treats the
// sorted catalog as the "source file": Line is the rule's 1-based
// position in it (0 for catalog-level issues), RuleID is the check slug,
// and the offending rule's ID leads the message.

// ToolName is the analyzer name vetting findings carry.
const ToolName = "rulecheck"

// Findings converts the report's issues to canonical diag findings, in
// canonical order.
func (r *Report) Findings() []diag.Finding {
	out := make([]diag.Finding, 0, len(r.Issues))
	for _, is := range r.Issues {
		out = append(out, diag.Finding{
			Tool:     ToolName,
			RuleID:   is.Check,
			Severity: is.Severity.String(),
			Line:     is.RuleIndex,
			Message:  is.Message,
		})
	}
	diag.Sort(out)
	return out
}

// Analyzer adapts catalog vetting to the diag.Analyzer interface. It
// ignores the source argument — the catalog is the program under
// analysis — and is therefore NOT registered in the default scan
// registry; the vet subcommand and serve verb construct it explicitly.
type Analyzer struct {
	catalog *rules.Catalog
}

// NewAnalyzer returns a vetting analyzer over c.
func NewAnalyzer(c *rules.Catalog) *Analyzer { return &Analyzer{catalog: c} }

// Name implements diag.Analyzer.
func (a *Analyzer) Name() string { return ToolName }

// Analyze implements diag.Analyzer: it vets the catalog and reports the
// issues as findings. src is ignored.
func (a *Analyzer) Analyze(ctx context.Context, src string) (diag.Result, error) {
	_ = ctx
	_ = src
	rep := Check(a.catalog)
	fs := rep.Findings()
	return diag.Result{Tool: ToolName, Findings: fs, Vulnerable: rep.HasErrors()}, nil
}

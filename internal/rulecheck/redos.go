package rulecheck

import (
	"regexp"
	"regexp/syntax"
	"strings"
	"time"
)

// ReDoS analysis. Go's regexp engine is RE2-derived and guarantees
// linear-time matching, so no catalog rule can stall this repo's scan
// path catastrophically — but the catalog is the paper's portable
// artifact: the same patterns run inside the VS Code extension's
// backtracking JavaScript engine, where a nested unbounded quantifier is
// an outage. The structural heuristics below flag the classic
// backtracking blowup shapes; a bounded worst-case probe then executes
// each pattern on adversarial pump input under a generous time budget as
// a safety net against patterns that are merely expensive, even for RE2
// (huge counted repetitions, pathological literal sets).

// redosFinding is one structural hazard in a pattern.
type redosFinding struct {
	kind   string // "nested-quantifier", "overlapping-alternation", "dotstar-prefix"
	detail string
}

// analyzeRedos parses expr and returns the structural hazards found.
func analyzeRedos(expr string) []redosFinding {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil
	}
	var out []redosFinding
	walkRedos(re, false, &out)
	if hasDotStarPrefix(re) {
		out = append(out, redosFinding{
			kind:   "dotstar-prefix",
			detail: "pattern begins with an unanchored `.*`/`.+`, which scans to end of line before the first required element",
		})
	}
	return out
}

// walkRedos descends the AST tracking whether the current node sits under
// an unbounded quantifier, emitting a finding for each hazardous nesting
// or ambiguous alternation.
func walkRedos(re *syntax.Regexp, underUnbounded bool, out *[]redosFinding) {
	if unbounded(re) {
		body := re.Sub[0]
		if underUnbounded {
			// The outer caller already reported the hazardous shape when it
			// inspected its own body; recursing with the flag set keeps
			// deeper nestings from double-reporting.
		} else if nullable(body) || edgeUnbounded(body, true) || edgeUnbounded(body, false) {
			*out = append(*out, redosFinding{
				kind: "nested-quantifier",
				detail: "unbounded quantifier over `" + body.String() +
					"` admits ambiguous repetition splits (catastrophic backtracking in non-RE2 engines)",
			})
			underUnbounded = true
		}
		if alt := ambiguousAlternation(body); alt != nil {
			*out = append(*out, redosFinding{
				kind: "overlapping-alternation",
				detail: "alternation `" + alt.String() +
					"` under an unbounded quantifier has branches with overlapping first characters",
			})
		}
	}
	for _, sub := range re.Sub {
		walkRedos(sub, underUnbounded, out)
	}
}

// unbounded reports whether re is a quantifier with no upper repetition
// bound.
func unbounded(re *syntax.Regexp) bool {
	switch re.Op {
	case syntax.OpStar, syntax.OpPlus:
		return true
	case syntax.OpRepeat:
		return re.Max < 0
	}
	return false
}

// nullable reports whether re can match the empty string.
func nullable(re *syntax.Regexp) bool {
	switch re.Op {
	case syntax.OpEmptyMatch, syntax.OpStar, syntax.OpQuest,
		syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText, syntax.OpEndText,
		syntax.OpWordBoundary, syntax.OpNoWordBoundary:
		return true
	case syntax.OpLiteral:
		return len(re.Rune) == 0
	case syntax.OpRepeat:
		return re.Min == 0 || nullable(re.Sub[0])
	case syntax.OpPlus, syntax.OpCapture:
		return nullable(re.Sub[0])
	case syntax.OpConcat:
		for _, sub := range re.Sub {
			if !nullable(sub) {
				return false
			}
		}
		return true
	case syntax.OpAlternate:
		for _, sub := range re.Sub {
			if nullable(sub) {
				return true
			}
		}
		return false
	}
	return false
}

// edgeUnbounded reports whether an unbounded quantifier inside body is
// reachable from its start (atStart) or end without crossing a
// non-nullable element. An inner quantifier fenced on both sides by
// required delimiters — e.g. the inner star of `(?:x|\(y*\))*` — cannot
// create ambiguous iteration splits; an inner quantifier at an edge —
// `(?:a+)+` — can.
func edgeUnbounded(body *syntax.Regexp, atStart bool) bool {
	switch body.Op {
	case syntax.OpCapture:
		return edgeUnbounded(body.Sub[0], atStart)
	case syntax.OpStar, syntax.OpPlus:
		return true
	case syntax.OpRepeat:
		if body.Max < 0 {
			return true
		}
		return edgeUnbounded(body.Sub[0], atStart)
	case syntax.OpQuest:
		return edgeUnbounded(body.Sub[0], atStart)
	case syntax.OpAlternate:
		for _, sub := range body.Sub {
			if edgeUnbounded(sub, atStart) {
				return true
			}
		}
		return false
	case syntax.OpConcat:
		subs := body.Sub
		if !atStart {
			subs = reversed(subs)
		}
		for _, sub := range subs {
			if edgeUnbounded(sub, atStart) {
				return true
			}
			if !nullable(sub) {
				return false
			}
		}
		return false
	}
	return false
}

func reversed(subs []*syntax.Regexp) []*syntax.Regexp {
	out := make([]*syntax.Regexp, len(subs))
	for i, s := range subs {
		out[len(subs)-1-i] = s
	}
	return out
}

// ambiguousAlternation returns the first alternation inside body whose
// branches have overlapping first-byte sets — or a nullable branch next
// to non-nullable ones, the shape syntax.Parse's prefix factoring leaves
// behind for `a|ab` (→ `a(?:(?:)|b)`) — or nil.
func ambiguousAlternation(body *syntax.Regexp) *syntax.Regexp {
	if body.Op == syntax.OpAlternate {
		var seen [256]bool
		hasNullable := false
		for _, sub := range body.Sub {
			if nullable(sub) {
				hasNullable = true
				continue
			}
			var first [256]bool
			firstBytes(sub, &first)
			for b := 0; b < 256; b++ {
				if first[b] && seen[b] {
					return body
				}
			}
			for b := 0; b < 256; b++ {
				seen[b] = seen[b] || first[b]
			}
		}
		if hasNullable && len(body.Sub) > 1 {
			return body
		}
	}
	for _, sub := range body.Sub {
		if alt := ambiguousAlternation(sub); alt != nil {
			return alt
		}
	}
	return nil
}

// firstBytes accumulates the bytes that can begin a match of re into set.
// The approximation is conservative for ASCII (multi-byte runes mark
// their lead byte).
func firstBytes(re *syntax.Regexp, set *[256]bool) {
	switch re.Op {
	case syntax.OpLiteral:
		if len(re.Rune) > 0 {
			markRune(re.Rune[0], re.Flags&syntax.FoldCase != 0, set)
		}
	case syntax.OpCharClass:
		for i := 0; i+1 < len(re.Rune); i += 2 {
			for r := re.Rune[i]; r <= re.Rune[i+1] && r < 256; r++ {
				set[byte(r)] = true
			}
			if re.Rune[i] > 255 {
				set[0xF0] = true // lead byte territory; coarse but safe
			}
		}
	case syntax.OpAnyChar, syntax.OpAnyCharNotNL:
		for b := 0; b < 256; b++ {
			set[b] = true
		}
		if re.Op == syntax.OpAnyCharNotNL {
			set['\n'] = false
		}
	case syntax.OpCapture, syntax.OpPlus, syntax.OpStar, syntax.OpQuest, syntax.OpRepeat:
		firstBytes(re.Sub[0], set)
	case syntax.OpAlternate:
		for _, sub := range re.Sub {
			firstBytes(sub, set)
		}
	case syntax.OpConcat:
		for _, sub := range re.Sub {
			firstBytes(sub, set)
			if !nullable(sub) {
				return
			}
		}
	}
}

func markRune(r rune, fold bool, set *[256]bool) {
	if r < 256 {
		set[byte(r)] = true
	}
	if fold {
		for _, v := range []rune{r &^ 0x20, r | 0x20} {
			if v < 256 {
				set[byte(v)] = true
			}
		}
	}
}

// hasDotStarPrefix reports whether the pattern's match necessarily begins
// with an unanchored any-char repetition — the `.*foo` shape that makes
// every match re-scan its line prefix.
func hasDotStarPrefix(re *syntax.Regexp) bool {
	switch re.Op {
	case syntax.OpCapture:
		return hasDotStarPrefix(re.Sub[0])
	case syntax.OpConcat:
		for _, sub := range re.Sub {
			switch sub.Op {
			case syntax.OpBeginLine, syntax.OpBeginText, syntax.OpEmptyMatch:
				continue
			}
			return hasDotStarPrefix(sub)
		}
		return false
	case syntax.OpStar, syntax.OpPlus:
		s := re.Sub[0]
		return s.Op == syntax.OpAnyChar || s.Op == syntax.OpAnyCharNotNL
	}
	return false
}

// probeBudget is the per-rule wall-clock allowance for the worst-case
// input probe. RE2 scans the probe inputs in well under a millisecond;
// the budget is three orders of magnitude above that so scheduler noise
// cannot produce flaky vet output.
const probeBudget = 500 * time.Millisecond

// probeSize is the adversarial input length in bytes.
const probeSize = 32 << 10

// probeWorstCase runs re over adversarial pump inputs and reports whether
// the total match time stayed within budget. Inputs are derived from the
// pattern itself: its possible first bytes repeated (maximizing candidate
// start positions) and a truncated witness repeated (maximizing
// almost-matches).
func probeWorstCase(re *regexp.Regexp, parsed string, wit witness) (time.Duration, bool) {
	var first [256]bool
	if p, err := syntax.Parse(parsed, syntax.Perl); err == nil {
		firstBytes(p, &first)
	}
	pump := byte('a')
	for b := 0; b < 256; b++ {
		if first[b] && b != '\n' {
			pump = byte(b)
			break
		}
	}
	inputs := []string{strings.Repeat(string(pump), probeSize)}
	if wit.ok && len(wit.body) > 1 {
		stub := wit.body[:len(wit.body)-1]
		inputs = append(inputs, strings.Repeat(stub, probeSize/len(stub)+1)[:probeSize])
	}
	start := time.Now()
	for _, in := range inputs {
		re.MatchString(in)
	}
	elapsed := time.Since(start)
	return elapsed, elapsed <= probeBudget
}

package rulecheck

import (
	"regexp"
	"strings"
	"testing"

	"github.com/dessertlab/patchitpy/internal/rules"
)

// Seeded-defect tests: each required check class is demonstrated by
// planting a deliberately broken rule in a custom catalog and asserting
// the corresponding check fires. This is the evidence the checks are
// live — the shipped catalog passing proves nothing if a check can never
// trigger.

// seedRule builds a syntactically healthy rule the metadata checks
// accept; tests then break one aspect at a time.
func seedRule(id, pattern string) *rules.Rule {
	return &rules.Rule{
		ID:          id,
		CWE:         "CWE-089",
		Category:    rules.Injection,
		Title:       "seeded test rule",
		Description: "deliberately planted by a vetting test",
		Severity:    rules.SeverityHigh,
		Pattern:     regexp.MustCompile(pattern),
	}
}

func issuesFor(t *testing.T, check string, rs ...*rules.Rule) []Issue {
	t.Helper()
	rep := Check(rules.NewCustom(rs))
	var out []Issue
	for _, is := range rep.Issues {
		if is.Check == check {
			out = append(out, is)
		}
	}
	return out
}

func TestSeededRedos(t *testing.T) {
	// The canonical catastrophic-backtracking shape.
	got := issuesFor(t, "redos-nested", seedRule("PIP-TST-001", `(?:a+)+b`))
	if len(got) == 0 {
		t.Fatal("redos-nested did not fire on (?:a+)+b")
	}
	if got[0].Severity != SeverityError {
		t.Errorf("redos-nested severity = %v, want ERROR", got[0].Severity)
	}

	// The guarded shape the catalog legitimately uses (PIP-CFG-005):
	// inner star fenced by required parens on both sides must NOT fire.
	if got := issuesFor(t, "redos-nested", seedRule("PIP-TST-002", `f\(((?:[^()\n]|\([^()\n]*\))*)\)`)); len(got) != 0 {
		t.Errorf("redos-nested false positive on guarded nesting: %v", got)
	}
}

func TestSeededPrefilterEmpty(t *testing.T) {
	// (?i) case-folds the literal, so the extractor refuses it.
	r := seedRule("PIP-TST-001", `(?i)supersecret`)
	got := issuesFor(t, "prefilter-empty", r)
	if len(got) != 1 {
		t.Fatalf("prefilter-empty fired %d times on a case-folded pattern, want 1", len(got))
	}
	if got[0].Severity != SeverityWarning {
		t.Errorf("prefilter-empty severity = %v, want WARNING", got[0].Severity)
	}
}

func TestSeededBadCWE(t *testing.T) {
	mal := seedRule("PIP-TST-001", `eval\(`)
	mal.CWE = "CWE-89" // not zero-padded
	if got := issuesFor(t, "cwe-format", mal); len(got) != 1 {
		t.Fatalf("cwe-format fired %d times on %q, want 1", len(got), mal.CWE)
	}

	unknown := seedRule("PIP-TST-002", `eval\(`)
	unknown.CWE = "CWE-999"
	if got := issuesFor(t, "cwe-unknown", unknown); len(got) != 1 {
		t.Fatal("cwe-unknown did not fire on a CWE outside the vetted table")
	}

	misfiled := seedRule("PIP-TST-003", `eval\(`)
	misfiled.CWE = "CWE-611"
	misfiled.Category = rules.IntegrityFailures // the pre-fix shipped defect
	if got := issuesFor(t, "cwe-owasp-mismatch", misfiled); len(got) != 1 {
		t.Fatal("cwe-owasp-mismatch did not fire on XXE filed under A08")
	}
}

func TestSeededDuplicates(t *testing.T) {
	a := seedRule("PIP-TST-001", `os\.system\(`)
	b := seedRule("PIP-TST-002", `os\.system\(`)
	if got := issuesFor(t, "duplicate-rule", a, b); len(got) != 1 {
		t.Fatal("duplicate-rule did not fire on identical pattern+gates")
	}

	// Same pattern but distinct gates is tiering, not duplication.
	c := seedRule("PIP-TST-003", `os\.system\(`)
	c.Requires = regexp.MustCompile(`import os`)
	if got := issuesFor(t, "duplicate-rule", a, c); len(got) != 0 {
		t.Errorf("duplicate-rule false positive on gate-distinguished rules: %v", got)
	}
	if got := issuesFor(t, "duplicate-pattern", a, c); len(got) != 1 {
		t.Error("duplicate-pattern did not fire on gate-distinguished same-pattern rules")
	}

	dupA := seedRule("PIP-TST-004", `exec\(`)
	dupB := seedRule("PIP-TST-004", `evil\(`)
	if got := issuesFor(t, "duplicate-id", dupA, dupB); len(got) != 1 {
		t.Fatal("duplicate-id did not fire on a reused rule ID")
	}
}

func TestSeededShadowedAlternation(t *testing.T) {
	if got := issuesFor(t, "alt-shadowed", seedRule("PIP-TST-001", `md5|md5_hex`)); len(got) != 1 {
		t.Fatal("alt-shadowed did not fire on a tail alternation with a prefix branch")
	}
	// A trailing \b can fail after the short branch and rescue the long
	// one, so the same alternation with a suffix must not be reported.
	if got := issuesFor(t, "alt-shadowed", seedRule("PIP-TST-002", `(?:md5|md5_hex)\b`)); len(got) != 0 {
		t.Errorf("alt-shadowed false positive on suffixed alternation: %v", got)
	}
}

func TestSeededNonConvergentTemplate(t *testing.T) {
	r := seedRule("PIP-TST-001", `unsafe_load\(`)
	r.Fix = &rules.Fix{Replace: `unsafe_load(`, Note: "does not actually fix anything"}
	got := issuesFor(t, "template-nonconvergent", r)
	if len(got) != 1 {
		t.Fatal("template-nonconvergent did not fire on a fix that preserves the match")
	}
	if got[0].Severity != SeverityError {
		t.Errorf("template-nonconvergent severity = %v, want ERROR", got[0].Severity)
	}
}

func TestSeededTemplateIntroduces(t *testing.T) {
	a := seedRule("PIP-TST-001", `loads_v1\(`)
	a.Fix = &rules.Fix{Replace: `loads_v2(`, Note: "swaps one vulnerable call for another"}
	b := seedRule("PIP-TST-002", `loads_v2\(`)
	if got := issuesFor(t, "template-introduces", a, b); len(got) != 1 {
		t.Fatal("template-introduces did not fire on a fix that triggers another rule")
	}
}

func TestSeededTemplateBadGroup(t *testing.T) {
	r := seedRule("PIP-TST-001", `hash\((\w+)\)`)
	r.Fix = &rules.Fix{Replace: `secure_hash(${2})`, Note: "references a group the pattern lacks"}
	if got := issuesFor(t, "template-bad-group", r); len(got) != 1 {
		t.Fatal("template-bad-group did not fire on $2 with one capture group")
	}
}

func TestSeededSeverityAndCategoryRange(t *testing.T) {
	r := seedRule("PIP-TST-001", `eval\(`)
	r.Severity = rules.Severity(9)
	if got := issuesFor(t, "severity-range", r); len(got) != 1 {
		t.Fatal("severity-range did not fire")
	}

	c := seedRule("PIP-TST-002", `eval\(`)
	c.Category = rules.CategoryUnknown
	if got := issuesFor(t, "category-unknown", c); len(got) != 1 {
		t.Fatal("category-unknown did not fire")
	}
}

func TestSeededIssueMessageCarriesRuleID(t *testing.T) {
	r := seedRule("PIP-TST-007", `(?:x+)+y`)
	got := issuesFor(t, "redos-nested", r)
	if len(got) == 0 || !strings.HasPrefix(got[0].Message, "PIP-TST-007: ") {
		t.Fatalf("issue message does not lead with the rule ID: %+v", got)
	}
	if len(got) > 0 && got[0].RuleIndex != 1 {
		t.Errorf("RuleIndex = %d, want 1", got[0].RuleIndex)
	}
}

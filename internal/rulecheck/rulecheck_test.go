package rulecheck

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/dessertlab/patchitpy/internal/diag"
	"github.com/dessertlab/patchitpy/internal/rules"
)

// TestShippedCatalogClean is the gate the vet subcommand enforces in CI:
// the catalog we ship must carry zero error-severity issues.
func TestShippedCatalogClean(t *testing.T) {
	rep := Check(rules.NewCatalog())
	if rep.RuleCount != 85 {
		t.Fatalf("vetted %d rules, want 85", rep.RuleCount)
	}
	for _, is := range rep.Issues {
		if is.Severity == SeverityError {
			t.Errorf("shipped catalog has error-severity issue: %s %s", is.Check, is.Message)
		}
	}
}

// TestShippedCatalogKnownAdvisories pins the advisory findings we know
// about and accept, so a regression that silences the checks (or a
// catalog change that adds new advisories) is visible in review.
func TestShippedCatalogKnownAdvisories(t *testing.T) {
	rep := Check(rules.NewCatalog())
	got := map[string][]string{}
	for _, is := range rep.Issues {
		got[is.Check] = append(got[is.Check], is.RuleID)
	}
	want := map[string][]string{
		// (?mi) case-folds every literal, so no prefilter set exists.
		"prefilter-empty": {"PIP-AUT-001", "PIP-AUT-002", "PIP-AUT-003", "PIP-AUT-008", "PIP-AUT-009"},
		// Deliberate severity tiering over the same verify=False pattern.
		"duplicate-pattern": {"PIP-CRY-016"},
		// exec(resp.content) matches both the integrity and eval-injection rules.
		"overlap": {"PIP-INT-008"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("advisory issues changed:\n got: %v\nwant: %v", got, want)
	}
}

// TestDeterministic asserts two runs over the same catalog produce
// byte-identical reports — the property the SARIF golden rests on.
func TestDeterministic(t *testing.T) {
	c := rules.NewCatalog()
	a, b := Check(c), Check(c)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two vet runs over the same catalog differ:\n%v\nvs\n%v", a.Issues, b.Issues)
	}
}

// TestVetBudget keeps the full vet run inside the interactive budget the
// CLI promises (<2s), probe included.
func TestVetBudget(t *testing.T) {
	start := time.Now()
	Check(rules.NewCatalog())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("vet run took %v, want < 2s", elapsed)
	}
}

func TestReportCounts(t *testing.T) {
	rep := &Report{Issues: []Issue{
		{Severity: SeverityError}, {Severity: SeverityError},
		{Severity: SeverityWarning},
		{Severity: SeverityInfo}, {Severity: SeverityInfo}, {Severity: SeverityInfo},
	}}
	if rep.Errors() != 2 || rep.Warnings() != 1 || rep.Infos() != 3 {
		t.Errorf("counts = %d/%d/%d, want 2/1/3", rep.Errors(), rep.Warnings(), rep.Infos())
	}
	if !rep.HasErrors() {
		t.Error("HasErrors = false with 2 errors")
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{
		SeverityError: "ERROR", SeverityWarning: "WARNING", SeverityInfo: "INFO", Severity(9): "Severity(9)",
	} {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(sev), got, want)
		}
	}
}

func TestFindingsMapping(t *testing.T) {
	rep := Check(rules.NewCatalog())
	fs := rep.Findings()
	if len(fs) != len(rep.Issues) {
		t.Fatalf("Findings() len = %d, want %d", len(fs), len(rep.Issues))
	}
	if !diag.IsSorted(fs) {
		t.Error("Findings() not in canonical diag order")
	}
	for _, f := range fs {
		if f.Tool != ToolName {
			t.Fatalf("finding tool = %q, want %q", f.Tool, ToolName)
		}
		if f.RuleID == "" || f.Message == "" {
			t.Fatalf("finding missing check slug or message: %+v", f)
		}
	}
}

func TestAnalyzer(t *testing.T) {
	a := NewAnalyzer(rules.NewCatalog())
	if a.Name() != "rulecheck" {
		t.Fatalf("Name() = %q", a.Name())
	}
	res, err := a.Analyze(context.Background(), "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if res.Vulnerable {
		t.Error("shipped catalog reported vulnerable (has errors)")
	}
	if len(res.Findings) == 0 {
		t.Error("expected advisory findings from the shipped catalog")
	}
}

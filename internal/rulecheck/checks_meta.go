package rulecheck

import (
	"regexp"

	"github.com/dessertlab/patchitpy/internal/rules"
)

// Metadata integrity: identifiers, CWE/OWASP mappings, severity range,
// fingerprint stability. These checks need no execution — they are pure
// table lookups over the compiled catalog.

var cweFormatRe = regexp.MustCompile(`^CWE-\d{3}$`)

func (ck *checker) checkMeta() {
	for i := 1; i < len(ck.rs); i++ {
		if ck.rs[i].ID == ck.rs[i-1].ID {
			ck.add(SeverityError, "duplicate-id", -1,
				"rule ID %q appears more than once in the catalog", ck.rs[i].ID)
		}
	}

	for i, r := range ck.rs {
		switch {
		case !cweFormatRe.MatchString(r.CWE):
			ck.add(SeverityError, "cwe-format", i,
				"CWE identifier %q is not of the form CWE-NNN (zero-padded to three digits)", r.CWE)
		case cweNames[r.CWE] == "":
			ck.add(SeverityError, "cwe-unknown", i,
				"CWE %q is not in the vetted CWE table (typo, or extend internal/rulecheck/cwedata.go deliberately)", r.CWE)
		case !categoryAllowed(r.CWE, r.Category):
			ck.add(SeverityError, "cwe-owasp-mismatch", i,
				"%s (%s) is filed under %q, which is not an accepted OWASP Top 10:2021 mapping for it",
				r.CWE, cweNames[r.CWE], r.Category)
		}

		if r.Category < rules.BrokenAccessControl || r.Category > rules.SSRF {
			ck.add(SeverityError, "category-unknown", i,
				"category %d is outside the OWASP Top 10:2021 range", int(r.Category))
		}
		if r.Severity < rules.SeverityLow || r.Severity > rules.SeverityCritical {
			ck.add(SeverityError, "severity-range", i,
				"severity %d is outside the LOW..CRITICAL range", int(r.Severity))
		}
		if r.Title == "" || r.Description == "" {
			ck.add(SeverityWarning, "metadata-missing", i,
				"rule has an empty title or description")
		}
	}

	// Fingerprint stability: rebuilding a catalog from the same rules must
	// reproduce the fingerprint, or every cache keyed on it silently
	// degrades to a miss (or worse, a cross-catalog collision).
	if fp := rules.NewCustom(ck.rs).Fingerprint(); fp != ck.catalog.Fingerprint() {
		ck.add(SeverityError, "fingerprint-unstable", -1,
			"catalog fingerprint is not stable under rebuild: %s != %s", fp, ck.catalog.Fingerprint())
	}
}

package rulecheck

import (
	"testing"

	"github.com/dessertlab/patchitpy/internal/rules"
)

// TestSynthesizeShippedCatalog asserts witness synthesis succeeds for
// every shipped rule — the differential checks cover nothing for a rule
// without a witness, so full coverage here is load-bearing.
func TestSynthesizeShippedCatalog(t *testing.T) {
	for _, r := range rules.NewCatalog().Rules() {
		wit := synthesize(r)
		if !wit.ok {
			t.Errorf("%s: no witness: %s", r.ID, wit.reason)
			continue
		}
		if !r.Pattern.MatchString(wit.full) {
			t.Errorf("%s: witness %q does not match its own pattern", r.ID, wit.full)
		}
		if r.Requires != nil && !r.Requires.MatchString(wit.full) {
			t.Errorf("%s: witness %q fails the requires gate", r.ID, wit.full)
		}
		if r.Excludes != nil && r.Excludes.MatchString(wit.full) {
			t.Errorf("%s: witness %q trips the excludes gate", r.ID, wit.full)
		}
	}
}

func TestExpressionWitnesses(t *testing.T) {
	cases := []struct {
		expr string
		want string // the first candidate
	}{
		{`abc`, "abc"},
		{`a+`, "a"},
		{`a*b`, "b"},
		{`a{3}`, "aaa"},
		{`(?:x|y)z`, "xz"},
		{`[a-f]\d`, "a0"},
		{`^import\s+os$`, "import os"},
	}
	for _, tc := range cases {
		got, err := expressionWitnesses(tc.expr)
		if err != nil {
			t.Errorf("%q: %v", tc.expr, err)
			continue
		}
		if len(got) == 0 || got[0] != tc.want {
			t.Errorf("expressionWitnesses(%q) = %v, want first %q", tc.expr, got, tc.want)
		}
	}
}

func TestWitnessCandidateCap(t *testing.T) {
	got, err := expressionWitnesses(`(?:a|b|c|d|e)(?:f|g|h|i|j)(?:k|l|m|n|o)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > maxWitnessCandidates {
		t.Errorf("candidate count %d exceeds cap %d", len(got), maxWitnessCandidates)
	}
}

func TestGatedWitness(t *testing.T) {
	r := &rules.Rule{
		ID:       "PIP-TST-001",
		Pattern:  mustRe(`danger\(`),
		Requires: mustRe(`import danger_lib`),
	}
	wit := synthesize(r)
	if !wit.ok {
		t.Fatalf("no witness: %s", wit.reason)
	}
	if !r.Requires.MatchString(wit.full) || !r.Pattern.MatchString(wit.full) {
		t.Errorf("gated witness %q fails a gate", wit.full)
	}
	if wit.body == wit.full {
		t.Errorf("gate line was not prepended: %q", wit.full)
	}
}

func TestExcludedWitness(t *testing.T) {
	// Excludes matches every candidate the pattern can produce, so
	// synthesis must fail with a reason instead of returning a witness
	// the engine would never fire on.
	r := &rules.Rule{
		ID:       "PIP-TST-001",
		Pattern:  mustRe(`load\(`),
		Excludes: mustRe(`load`),
	}
	if wit := synthesize(r); wit.ok {
		t.Errorf("synthesize returned %q despite an all-excluding gate", wit.full)
	} else if wit.reason == "" {
		t.Error("failed synthesis carries no reason")
	}
}

package patchitpy

// This file hosts the benchmark harness that regenerates every table and
// figure of the paper's evaluation section. Each benchmark both exercises
// the pipeline under `go test -bench` and reports the reproduced headline
// numbers as custom metrics, so `go test -bench=. -benchmem` doubles as
// the experiment runner:
//
//	BenchmarkPromptStats       — §III-A prompt-token statistics
//	BenchmarkCorpusGeneration  — §III-B 609-sample corpus and vulnerability mix
//	BenchmarkTable2Detection   — Table II (detection: P/R/F1/Accuracy, 7 tools)
//	BenchmarkTable3Patching    — Table III (repair rates + suggestion rates)
//	BenchmarkFig3Complexity    — Fig. 3 (cyclomatic-complexity distributions)
//	BenchmarkQualityScores     — §III-C Pylint-score quality comparison

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"sync"
	"testing"

	"github.com/dessertlab/patchitpy/internal/baseline/banditlite"
	"github.com/dessertlab/patchitpy/internal/baseline/llmsim"
	"github.com/dessertlab/patchitpy/internal/baseline/querydb"
	"github.com/dessertlab/patchitpy/internal/baseline/semgreplite"
	"github.com/dessertlab/patchitpy/internal/complexity"
	"github.com/dessertlab/patchitpy/internal/detect"
	"github.com/dessertlab/patchitpy/internal/experiments"
	"github.com/dessertlab/patchitpy/internal/generator"
	"github.com/dessertlab/patchitpy/internal/lintscore"
	"github.com/dessertlab/patchitpy/internal/obs"
	"github.com/dessertlab/patchitpy/internal/prompts"
	"github.com/dessertlab/patchitpy/internal/stats"
)

var (
	benchOnce    sync.Once
	benchResults *experiments.Results
	benchErr     error
)

func benchRun(b *testing.B) *experiments.Results {
	b.Helper()
	benchOnce.Do(func() { benchResults, benchErr = experiments.Run() })
	if benchErr != nil {
		b.Fatalf("experiments.Run: %v", benchErr)
	}
	return benchResults
}

// BenchmarkPromptStats regenerates the §III-A prompt-length profile.
func BenchmarkPromptStats(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		ps := prompts.All()
		lengths := make([]float64, len(ps))
		for j, p := range ps {
			lengths[j] = float64(p.Tokens())
		}
		mean = stats.Mean(lengths)
	}
	b.ReportMetric(mean, "tokens-mean")
}

// BenchmarkCorpusGeneration regenerates the 609-sample corpus (§III-B).
func BenchmarkCorpusGeneration(b *testing.B) {
	ps := prompts.All()
	var vulnerable int
	for i := 0; i < b.N; i++ {
		samples, err := generator.Corpus(ps)
		if err != nil {
			b.Fatal(err)
		}
		vulnerable = 0
		for _, s := range samples {
			if s.Truth.Vulnerable {
				vulnerable++
			}
		}
	}
	b.ReportMetric(float64(vulnerable), "vulnerable-samples")
}

// BenchmarkTable2Detection runs all seven detectors over the corpus and
// reports PatchitPy's headline metrics (paper Table II).
func BenchmarkTable2Detection(b *testing.B) {
	ps := prompts.All()
	samples, err := generator.Corpus(ps)
	if err != nil {
		b.Fatal(err)
	}
	engine := New()
	bandit := banditlite.New()
	semgrep := semgreplite.New()
	codeql := querydb.New()
	assistants := llmsim.Assistants()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samples {
			engine.Analyze(s.Code)
			bandit.Vulnerable(s.Code)
			semgrep.Vulnerable(s.Code)
			codeql.Vulnerable(s.Code)
			for _, a := range assistants {
				a.Review(s)
			}
		}
	}
	b.StopTimer()
	r := benchRun(b)
	all := r.Table2[experiments.ToolPatchitPy][experiments.All]
	b.ReportMetric(all.Precision(), "precision")
	b.ReportMetric(all.Recall(), "recall")
	b.ReportMetric(all.F1(), "f1")
	b.ReportMetric(all.Accuracy(), "accuracy")
}

// BenchmarkTable3Patching runs the detect-and-patch pipeline over the
// corpus and reports the repair rates (paper Table III).
func BenchmarkTable3Patching(b *testing.B) {
	ps := prompts.All()
	samples, err := generator.Corpus(ps)
	if err != nil {
		b.Fatal(err)
	}
	engine := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samples {
			engine.Fix(s.Code)
		}
	}
	b.StopTimer()
	r := benchRun(b)
	all := r.Table3[experiments.ToolPatchitPy][experiments.All]
	b.ReportMetric(all.RateDetected(), "patched-det")
	b.ReportMetric(all.RateTotal(), "patched-tot")
	b.ReportMetric(r.SemgrepSuggestionRate, "semgrep-suggest")
	b.ReportMetric(r.BanditSuggestionRate, "bandit-suggest")
}

// BenchmarkFig3Complexity computes the per-sample cyclomatic complexity of
// the corpus and reports the distribution means (paper Fig. 3).
func BenchmarkFig3Complexity(b *testing.B) {
	ps := prompts.All()
	samples, err := generator.Corpus(ps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samples {
			complexity.Program(s.Code)
		}
	}
	b.StopTimer()
	r := benchRun(b)
	b.ReportMetric(r.Fig3Summary[experiments.FigGenerated].Mean, "generated-mean")
	b.ReportMetric(r.Fig3Summary[experiments.ToolPatchitPy].Mean, "patchitpy-mean")
	b.ReportMetric(r.Fig3Summary[experiments.ToolClaude].Mean, "claude-mean")
}

// BenchmarkQualityScores lints the corpus's patched outputs (§III-C).
func BenchmarkQualityScores(b *testing.B) {
	ps := prompts.All()
	samples, err := generator.Corpus(ps)
	if err != nil {
		b.Fatal(err)
	}
	engine := New()
	patched := make([]string, len(samples))
	for i, s := range samples {
		patched[i] = engine.Fix(s.Code).Result.Source
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range patched {
			lintscore.Score(p)
		}
	}
}

// corpusSources converts the 609-sample corpus into detect.Source values.
func corpusSources(b *testing.B) []detect.Source {
	b.Helper()
	samples, err := generator.Corpus(prompts.All())
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]detect.Source, len(samples))
	for i, s := range samples {
		srcs[i] = detect.Source{Name: s.PromptID + "/" + s.Model, Code: s.Code}
	}
	return srcs
}

// BenchmarkScanCorpus scans the full corpus through the concurrent,
// automaton-prefiltered path (detect.ScanAll) and reports the prefilter's
// skip rate. NoCache keeps every iteration doing real scans, so this
// measures single-scan cost, not cache hits — BenchmarkServeHotVsCold
// covers the cached path. Compare against BenchmarkScanCorpusSequential —
// the results are byte-identical (asserted by TestScanAllMatchesScan,
// TestAutomatonPrefilterTransparent and TestScanAllCachedMatchesUncached
// in internal/detect).
func BenchmarkScanCorpus(b *testing.B) {
	srcs := corpusSources(b)
	d := detect.New(nil)
	var total int64
	for _, s := range srcs {
		total += int64(len(s.Code))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ScanAll(context.Background(), srcs, detect.Options{NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := d.Stats()
	b.ReportMetric(st.SkipRate(), "prefilter-skip-rate")
	b.ReportMetric(float64(len(srcs)), "sources")
}

// BenchmarkTaintCorpus is BenchmarkScanCorpus with the taint precision
// filter enabled: every source additionally pays parse + CFG + reaching-
// definitions fixpoint. CI's bench smoke gates the ratio between the two
// at <= 1.25x, which keeps the filter cheap enough to leave on in server
// deployments. It reports how many findings the filter suppressed.
func BenchmarkTaintCorpus(b *testing.B) {
	srcs := corpusSources(b)
	d := detect.New(nil)
	var total int64
	for _, s := range srcs {
		total += int64(len(s.Code))
	}
	b.SetBytes(total)
	b.ResetTimer()
	var suppressed int
	for i := 0; i < b.N; i++ {
		res, err := d.ScanAll(context.Background(), srcs, detect.Options{NoCache: true, TaintFilter: true})
		if err != nil {
			b.Fatal(err)
		}
		suppressed = 0
		for _, r := range res {
			for _, f := range r.Findings {
				if f.Suppressed {
					suppressed++
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(suppressed), "suppressed-findings")
}

// BenchmarkScanCorpusObs is the observability overhead guard: the same
// corpus scan as BenchmarkScanCorpus in three instrumentation states.
// "detached" (no registry — the library default) and "disabled" (registry
// attached, Enable never called — the serve default before an exporter
// connects) must stay within noise of each other and of
// BenchmarkScanCorpus; the <3% overhead budget from the design applies to
// these no-op states. "enabled" pays for real clocks and atomics and is
// reported for reference, not guarded.
//
//	go test -bench 'ScanCorpus(Obs)?$' -count 10 . | benchstat
func BenchmarkScanCorpusObs(b *testing.B) {
	srcs := corpusSources(b)
	var total int64
	for _, s := range srcs {
		total += int64(len(s.Code))
	}
	scan := func(b *testing.B, d *detect.Detector, ctx context.Context) {
		b.Helper()
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.ScanAll(ctx, srcs, detect.Options{NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("detached", func(b *testing.B) {
		scan(b, detect.New(nil), context.Background())
	})
	b.Run("disabled", func(b *testing.B) {
		d := detect.New(nil)
		reg := obs.NewRegistry() // attached, never enabled
		d.SetObs(reg)
		scan(b, d, obs.With(context.Background(), reg))
	})
	b.Run("enabled", func(b *testing.B) {
		d := detect.New(nil)
		reg := obs.NewRegistry()
		reg.Enable()
		d.SetObs(reg)
		scan(b, d, obs.With(context.Background(), reg))
	})
}

// BenchmarkScanCorpusSequential is the pre-pipeline baseline: one
// goroutine, no prefilter, no cache, one rule-set pass per sample —
// exactly the old ScanWith loop.
func BenchmarkScanCorpusSequential(b *testing.B) {
	srcs := corpusSources(b)
	d := detect.New(nil)
	var total int64
	for _, s := range srcs {
		total += int64(len(s.Code))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range srcs {
			d.ScanWith(s.Code, detect.Options{NoPrefilter: true, NoCache: true})
		}
	}
}

// BenchmarkScanPrepared scans the corpus single-threaded through
// ScanPrepared with one Prepared per source reused across iterations, so
// the comment mask, line index and candidate bitset are paid once — the
// steady-state cost of the rule loop itself.
func BenchmarkScanPrepared(b *testing.B) {
	srcs := corpusSources(b)
	d := detect.New(nil)
	prepared := make([]*detect.Prepared, len(srcs))
	var total int64
	for i, s := range srcs {
		prepared[i] = d.Prepare(s.Code)
		total += int64(len(s.Code))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range prepared {
			d.ScanPrepared(p, detect.Options{NoCache: true})
		}
	}
	b.StopTimer()
	b.ReportMetric(d.Stats().SkipRate(), "prefilter-skip-rate")
}

// BenchmarkPrefilterAutomatonVsContains compares the three prefilter
// configurations over the corpus, single-threaded and uncached: the
// one-pass Aho-Corasick automaton, the PR 1 per-rule strings.Contains
// probes, and no prefilter at all. Each sub-benchmark reports the rule
// skip rate it achieved; findings are byte-identical across all three
// (asserted by TestAutomatonPrefilterTransparent).
func BenchmarkPrefilterAutomatonVsContains(b *testing.B) {
	srcs := corpusSources(b)
	var total int64
	for _, s := range srcs {
		total += int64(len(s.Code))
	}
	run := func(name string, opt detect.Options) {
		b.Run(name, func(b *testing.B) {
			d := detect.New(nil)
			opt.NoCache = true
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range srcs {
					d.ScanWith(s.Code, opt)
				}
			}
			b.StopTimer()
			b.ReportMetric(d.Stats().SkipRate(), "prefilter-skip-rate")
		})
	}
	run("automaton", detect.Options{})
	run("contains", detect.Options{ContainsPrefilter: true})
	run("none", detect.Options{NoPrefilter: true})
}

// BenchmarkServeHotVsCold measures the server-mode session protocol on
// repeated traffic: "cold" disables the result cache so every request
// pays a full scan; "hot" serves the same requests from a warmed cache.
// The ns/op ratio between the two sub-benchmarks is the cache's speedup
// on duplicate traffic; each reports its observed analyze-cache hit rate.
func BenchmarkServeHotVsCold(b *testing.B) {
	samples, err := generator.Corpus(prompts.All())
	if err != nil {
		b.Fatal(err)
	}
	var reqs bytes.Buffer
	enc := json.NewEncoder(&reqs)
	var payload int64
	for _, s := range samples {
		if err := enc.Encode(map[string]string{"cmd": "detect", "code": s.Code}); err != nil {
			b.Fatal(err)
		}
		payload += int64(len(s.Code))
	}
	requests := reqs.Bytes()

	run := func(name string, engine *Engine, warm bool) {
		b.Run(name, func(b *testing.B) {
			if warm {
				if err := engine.Serve(bytes.NewReader(requests), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(payload)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := engine.Serve(bytes.NewReader(requests), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(engine.CacheStats().Analyze.HitRate(), "analyze-hit-rate")
		})
	}
	cold := New()
	cold.SetCacheBytes(0)
	run("cold", cold, false)
	run("hot", New(), true)
}

// BenchmarkTable2 regenerates the evaluation through the concurrent
// (tool × sample) grid and reports PatchitPy's Table II headline metrics.
// Compare against BenchmarkTable2Sequential; the outputs are
// byte-identical (asserted by TestParallelMatchesSequential).
func BenchmarkTable2(b *testing.B) {
	var r *experiments.Results
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunContext(context.Background(), experiments.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	all := r.Table2[experiments.ToolPatchitPy][experiments.All]
	b.ReportMetric(all.Precision(), "precision")
	b.ReportMetric(all.Recall(), "recall")
	b.ReportMetric(all.F1(), "f1")
	b.ReportMetric(all.Accuracy(), "accuracy")
}

// BenchmarkTable2Sequential runs the retained single-goroutine reference
// harness — the before side of the before/after pair.
func BenchmarkTable2Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSequential(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullEvaluation runs the complete harness (all tables + figure).
func BenchmarkFullEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePerSample measures single-snippet latency — the
// interactive editor path (VS Code extension substitute). Caching is
// disabled so every iteration pays the full detect-and-patch cost; the
// hit path is measured by BenchmarkServeHotVsCold.
func BenchmarkEnginePerSample(b *testing.B) {
	engine := New()
	engine.SetCacheBytes(0)
	b.SetBytes(int64(len(vulnSnippet)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.Fix(vulnSnippet)
	}
}

module github.com/dessertlab/patchitpy

go 1.22
